/// \file
/// Campaign execution on the thread pool.
///
/// Jobs sharing a (task, geometry, engine) prefix also share the expensive
/// analyzer state (reference extraction, fault-free IPET, FMM bundle), so
/// the runner groups them: each group is one pool task that builds the
/// analyzer once and walks its cells in expansion order, writing results
/// into pre-sized slots indexed by job position. Inside a group, a single
/// analysis additionally fans its per-set work out on the *same* pool
/// (workers help while waiting, so nesting cannot deadlock).
///
/// Groups are submitted in *cache-aware order* — sorted by their shared
/// store-key prefix (campaign_group_key) rather than by axis indices — so
/// groups reusing the same memoized sub-results run back to back and stay
/// hot in the store's bounded LRU. Slot-indexed collection makes the
/// submission order invisible in the output.
///
/// Determinism contract: for a fixed spec, the CampaignResult — and hence
/// any report rendered from it — is byte-identical for every thread count,
/// with or without the store, cold or warm. This relies on (a) slot-indexed
/// result collection, (b) per-job seeds derived from job keys, (c)
/// fixed-shape parallel reductions inside the analyzer (see
/// core/pwcet_analyzer.hpp), and (d) store keys that capture every input of
/// the deterministic computation they name (see store/analysis_store.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "store/analysis_store.hpp"
#include "support/types.hpp"

namespace pwcet {

/// Selects one shard of an N-way campaign partition (engine/shard.hpp).
/// The default {0, 1} is the whole campaign. Indices are 0-based here;
/// the CLI spelling "--shard i/N" is 1-based.
struct ShardSelector {
  std::size_t index = 0;
  std::size_t count = 1;

  friend bool operator==(const ShardSelector&, const ShardSelector&) =
      default;
};

struct RunnerOptions {
  /// Worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Also fan the per-set work inside each analysis onto the pool.
  bool parallel_sets = true;
  /// Content-addressed store configuration (store/analysis_store.hpp).
  /// Enabled by default: grid jobs sharing sub-problems (same core across
  /// pfail values, same FMM rows across mechanisms) reuse each other's
  /// results, byte-identically. The runner applies environment overrides
  /// (PWCET_STORE=0 disables, PWCET_CACHE_DIR enables the disk tier) via
  /// store_options_from_env before constructing the store.
  StoreOptions store;
  /// Reuse a caller-owned store instead of constructing one from `store`
  /// — this is how warm re-runs are measured (bench/perf_analysis_time)
  /// and how long-lived services would share a cache across campaigns.
  AnalysisStore* shared_store = nullptr;
  /// Which shard of the campaign to execute. {0, 1} (the default) runs
  /// everything. A proper shard runs only the analyzer groups its
  /// contiguous schedule-order range owns (engine/shard.hpp's partition
  /// rule), leaves every other result slot untouched, and skips the
  /// whole-campaign report persist (its results are incomplete by
  /// design); per-sub-problem memo/disk artifacts are still shared, and
  /// `on_job_finished` fires only for owned jobs. Results for the owned
  /// slots are byte-identical to a whole-campaign run — jobs carry
  /// key-derived seeds and groups are self-contained, so a group computes
  /// the same bytes wherever it runs.
  ShardSelector shard;
  /// Observability hook: invoked once per completed job, from whichever
  /// thread finished it (the callee must be thread-safe). On the warm
  /// whole-campaign disk path it fires once per job after the load, so a
  /// progress consumer always reaches jobs/jobs. Must not throw; results
  /// are not exposed — the hook cannot influence the campaign (the
  /// determinism contract above stays intact).
  std::function<void()> on_job_finished;
};

/// Outcome of one campaign job. Which fields are meaningful depends on the
/// job's AnalysisKind; unused fields stay 0 (and `curve` stays empty
/// unless the spec requests a distribution output).
struct JobResult {
  CampaignJob job;
  Cycles fault_free_wcet = 0;   ///< SPTA only
  double pwcet = 0.0;           ///< estimate at spec.target_exceedance
  double observed_max = 0.0;    ///< MBPTA / simulation only
  double penalty_mean = 0.0;    ///< SPTA: mean fault-induced penalty
  std::size_t penalty_points = 0;  ///< SPTA: support size kept

  // Slack (kind kSlack) fields: static-vs-simulated miss bounds on the
  // worst structural path, in the all-sets-faulty regime and with only
  // set 0 degraded (bench/tab_srb_conservatism.cpp's two tables).
  std::uint64_t fetches = 0;        ///< simulated fetches (all-faulty run)
  std::uint64_t srb_hits = 0;       ///< SRB hits (spatial locality credit)
  std::uint64_t sim_misses = 0;     ///< simulated misses, all sets faulty
  std::uint64_t bound_misses = 0;   ///< static miss bound, all sets faulty
  std::uint64_t sim_misses_1 = 0;   ///< simulated set-0 misses, set 0 faulty
  std::uint64_t bound_misses_1 = 0;  ///< static set-0 bound, set 0 faulty

  /// Distribution sink: the job's pWCET-curve value at each
  /// spec.ccdf_exceedances entry (same order). Empty when the spec
  /// requests no distribution output; all-zero for slack jobs.
  std::vector<double> curve;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<JobResult> results;  ///< expansion order (spec grid order)
  std::size_t threads_used = 0;
  double wall_seconds = 0.0;  ///< timing only; never rendered into reports
  /// Store counters attributable to this run (delta for a shared store);
  /// observability only — like wall_seconds, never rendered into reports.
  StoreStats store_stats;

  const JobResult& at(std::size_t task_i, std::size_t geometry_i,
                      std::size_t pfail_i, std::size_t mechanism_i,
                      std::size_t engine_i = 0, std::size_t kind_i = 0,
                      std::size_t dcache_i = 0, std::size_t dmech_i = 0,
                      std::size_t samples_i = 0, std::size_t tlb_i = 0,
                      std::size_t l2_i = 0) const {
    return results[campaign_job_index(spec, task_i, geometry_i, pfail_i,
                                      mechanism_i, engine_i, kind_i,
                                      dcache_i, dmech_i, samples_i, tlb_i,
                                      l2_i)];
  }
};

/// Expands and executes the campaign. Exceptions thrown by jobs are
/// rethrown (first in expansion order) after all jobs finished.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunnerOptions& options = {});

/// Upper bound accepted for explicit worker-thread counts (PWCET_THREADS,
/// the CLI's --threads) — far beyond any host, it only guards against
/// unparsed garbage asking the pool for ~2^64 workers.
inline constexpr std::size_t kMaxCampaignThreads = 256;

/// Parses an explicit worker-thread count in 0..kMaxCampaignThreads
/// (0 = one per hardware thread); false on any other input. Shared by
/// threads_from_env and the CLI so the two cannot drift.
bool parse_thread_count(const std::string& text, std::size_t& threads);

/// Worker-thread count for benches: PWCET_THREADS if set, else 0 (= one
/// per hardware thread).
std::size_t threads_from_env();

}  // namespace pwcet
