/// \file
/// Declarative campaign-spec files: JSON (de)serialization of CampaignSpec.
///
/// A spec file is one JSON object naming the sweep axes and scalar knobs of
/// a CampaignSpec (see docs/campaign-spec.md for the full reference). The
/// loader is strict by design: unknown keys, wrong types, bad enum values,
/// out-of-range numbers and unknown task names are all rejected with a
/// SpecError whose message carries the source name, the line and the field
/// path of the offence — a spec file that loads is guaranteed to pass
/// CampaignSpec::validate(), so the abort-style contract checks downstream
/// can never fire on user input.
///
/// Round-trip contract: for any valid spec S, parsing spec_to_json(S)
/// yields a spec with the same campaign_spec_key — i.e. the file format
/// captures every field that influences campaign results. The shipped
/// specs under specs/ rely on this to be byte-equivalent stand-ins for the
/// programmatic campaigns they replaced (tests/spec_io_test.cpp pins both
/// directions).
#pragma once

#include <stdexcept>
#include <string>

#include "engine/campaign.hpp"

namespace pwcet {

/// Error raised for any malformed spec file. what() is a ready-to-print,
/// single-line diagnostic of the form
///   `<source>:<line>: <problem> (field "<path>")`.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& message)
      : std::runtime_error(message) {}
};

/// A parsed spec file: the campaign plus the file's display metadata
/// (`name`, `notes`), which never influence results or store keys.
struct SpecDocument {
  std::string name;   ///< optional human-readable title ("" if absent)
  std::string notes;  ///< optional free-text description ("" if absent)
  CampaignSpec spec;  ///< validated campaign, ready for run_campaign
};

/// Parses a spec from JSON text. `source` names the origin in diagnostics
/// (a file path, or something like "<inline>" for tests).
/// \throws SpecError on any syntactic or semantic problem.
SpecDocument parse_spec(const std::string& text, const std::string& source);

/// Reads and parses a spec file.
/// \throws SpecError if the file cannot be read or does not parse.
SpecDocument load_spec(const std::string& path);

/// load_spec plus a shape check shared by the shipped presentation
/// binaries (bench/tab_geometry_sweep, bench/tab_pfail_sweep,
/// examples/architecture_tradeoff), whose tables pivot the mechanisms axis
/// as exactly {none, SRB, RW} in that order.
/// \throws SpecError naming the file when the shape differs — such a spec
/// is still perfectly runnable via `pwcet run`, just not pivotable here.
SpecDocument load_spec_for_mechanism_tables(const std::string& path);

/// Serializes a spec to canonical JSON (2-space indent, fixed key order,
/// doubles in their shortest decimal form that still round-trips
/// bit-exactly). `name` and `notes` are emitted only when non-empty.
std::string spec_to_json(const CampaignSpec& spec, const std::string& name = "",
                         const std::string& notes = "");

}  // namespace pwcet
