/// \file
/// Declarative description of a pWCET scenario sweep.
///
/// Every figure and table of the paper is a cartesian sweep over a few axes:
/// task x cache geometry x cell failure probability x reliability mechanism
/// x WCET engine x analysis kind. A CampaignSpec names the axis values once;
/// expand_campaign() unrolls them into a flat, deterministically ordered
/// list of independent jobs that the runner (engine/runner.hpp) executes on
/// a thread pool.
///
/// Each job carries a seed derived from its *key* (the axis values, chained
/// through Rng::derive_seed), not from shared generator state or from its
/// position in the grid — so stochastic jobs (MBPTA, simulation) are
/// reproducible under any thread count and their seeds survive adding or
/// reordering axis values elsewhere in the spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "fault/fault_model.hpp"
#include "mbpta/mbpta.hpp"
#include "store/key.hpp"
#include "support/types.hpp"
#include "wcet/fmm.hpp"

namespace pwcet {

/// What to compute for one grid cell.
enum class AnalysisKind : std::uint8_t {
  kSpta,        ///< static pWCET analysis (the paper's pipeline)
  kMbpta,       ///< measurement-based EVT estimate over a chip population
  kSimulation,  ///< Monte-Carlo fault injection on the heavy path
};

/// Short name ("spta" / "mbpta" / "sim").
std::string analysis_kind_name(AnalysisKind kind);

/// Short engine name ("ilp" / "tree").
std::string engine_name(WcetEngine engine);

/// One axis-per-member cartesian sweep. Empty required axes are rejected
/// by validate(); `engines` and `kinds` default to the common case.
struct CampaignSpec {
  std::vector<std::string> tasks;        ///< workload names
  std::vector<CacheConfig> geometries;   ///< cache configurations
  std::vector<Probability> pfails;       ///< cell failure probabilities
  std::vector<Mechanism> mechanisms;     ///< none / RW / SRB
  std::vector<WcetEngine> engines{WcetEngine::kIlp};
  std::vector<AnalysisKind> kinds{AnalysisKind::kSpta};

  Probability target_exceedance = 1e-15;  ///< pWCET quantile reported
  std::size_t max_distribution_points = 2048;
  MbptaOptions mbpta{};             ///< population size etc. for kMbpta
  std::size_t simulation_chips = 1000;  ///< population size for kSimulation
  std::uint64_t base_seed = 0x5eed;

  std::size_t job_count() const {
    return tasks.size() * geometries.size() * pfails.size() *
           mechanisms.size() * engines.size() * kinds.size();
  }

  void validate() const;
};

/// One cell of the expanded grid: resolved axis values plus the axis
/// indices (for pivoting results back into tables) and the derived seed.
struct CampaignJob {
  std::size_t index = 0;  ///< position in expansion order

  std::size_t task_i = 0, geometry_i = 0, pfail_i = 0;
  std::size_t mechanism_i = 0, engine_i = 0, kind_i = 0;

  std::string task;
  CacheConfig geometry;
  Probability pfail = 0.0;
  Mechanism mechanism = Mechanism::kNone;
  WcetEngine engine = WcetEngine::kIlp;
  AnalysisKind kind = AnalysisKind::kSpta;

  std::uint64_t seed = 0;  ///< per-job RNG seed, derived from the key

  /// Stable human-readable id, e.g. "adpcm/16x4x16B/1.0e-04/SRB/ilp/spta".
  std::string id() const;
};

/// Seed for one job key (exposed so tests can pin the derivation).
std::uint64_t campaign_job_seed(const CampaignSpec& spec,
                                const CampaignJob& job);

/// Unrolls the sweep in fixed row-major order: tasks outermost, then
/// geometries, pfails, mechanisms, engines, kinds innermost.
std::vector<CampaignJob> expand_campaign(const CampaignSpec& spec);

/// Index of a cell in expansion order (inverse of the job's axis indices).
std::size_t campaign_job_index(const CampaignSpec& spec, std::size_t task_i,
                               std::size_t geometry_i, std::size_t pfail_i,
                               std::size_t mechanism_i,
                               std::size_t engine_i = 0,
                               std::size_t kind_i = 0);

/// Shared store-key prefix of a job's analyzer group: the (task, geometry,
/// engine) values that determine which memoized sub-results (analyzer
/// core, FMM rows) the job can reuse. Derived from the axis *values*
/// (task name, geometry fields), not indices, so duplicated or reordered
/// axis entries land on the same key. The runner submits groups ordered
/// by this prefix (cache-aware ordering): groups about to touch the same
/// memo entries run back to back, maximizing hit locality under a bounded
/// LRU. Results are unaffected — collection is slot-indexed.
StoreKey campaign_group_key(const CampaignJob& job);

/// Content key of a whole spec; names the campaign-report artifact the
/// runner persists when the store's disk tier is enabled.
StoreKey campaign_spec_key(const CampaignSpec& spec);

}  // namespace pwcet
