/// \file
/// Declarative description of a pWCET scenario sweep.
///
/// Every figure and table of the paper is a cartesian sweep over a few axes:
/// task x cache geometry x cell failure probability x reliability mechanism
/// x WCET engine x analysis kind — plus, for the extension artifacts, a
/// data-cache configuration, a data-cache mechanism pairing and a sample
/// count. A CampaignSpec names the axis values once; expand_campaign()
/// unrolls them into a flat, deterministically ordered list of independent
/// jobs that the runner (engine/runner.hpp) executes on a thread pool.
///
/// Each job carries a seed derived from its *key* (the axis values, chained
/// through Rng::derive_seed), not from shared generator state or from its
/// position in the grid — so stochastic jobs (MBPTA, simulation) are
/// reproducible under any thread count and their seeds survive adding or
/// reordering axis values elsewhere in the spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "fault/fault_model.hpp"
#include "mbpta/mbpta.hpp"
#include "store/key.hpp"
#include "support/types.hpp"
#include "wcet/fmm.hpp"

namespace pwcet {

/// What to compute for one grid cell.
enum class AnalysisKind : std::uint8_t {
  kSpta,        ///< static pWCET analysis (the paper's pipeline)
  kMbpta,       ///< measurement-based EVT estimate over a chip population
  kSimulation,  ///< Monte-Carlo fault injection on the heavy path
  kSlack,       ///< static-vs-simulated miss-bound conservatism (E5)
};

/// Short name ("spta" / "mbpta" / "sim" / "slack"); resolved through the
/// axis-name registry (engine/names.hpp).
std::string analysis_kind_name(AnalysisKind kind);

/// Short engine name ("ilp" / "tree"); registry-resolved.
std::string engine_name(WcetEngine engine);

/// Mechanism deployed on the data cache of a combined I+D cell. `kSame`
/// mirrors the job's instruction-cache mechanism — the uniform deployments
/// of the E8 table; the explicit values express mixed deployments such as
/// RW on the I-cache with SRB on the D-cache. Ignored (and reported as
/// "-") when the cell's data cache is off.
enum class DcacheMechanism : std::uint8_t {
  kSame,
  kNone,
  kReliableWay,
  kSharedReliableBuffer,
};

/// Short name ("same" / "none" / "RW" / "SRB"); registry-resolved.
std::string dcache_mechanism_name(DcacheMechanism m);

/// Data-cache write policy. Write-through (the default, and the only
/// policy of earlier releases) keeps stores out of the analyzed stream;
/// write-back allocates stores and prices dirty evictions
/// (analysis/writeback_dcache_domain.hpp).
enum class WritePolicy : std::uint8_t { kWriteThrough, kWriteBack };

/// Short name ("write_through" / "write_back"); registry-resolved.
std::string write_policy_name(WritePolicy policy);

/// One value of the data-cache axis: disabled (instruction-cache-only
/// analysis, the default) or a data-cache geometry analyzed alongside the
/// instruction cache (paper §VI future work, dcache/dcache_analysis.hpp).
struct DcacheAxis {
  bool enabled = false;
  CacheConfig geometry{};
  WritePolicy policy = WritePolicy::kWriteThrough;
  Cycles writeback_penalty = 0;  ///< extra cycles per dirty eviction

  friend bool operator==(const DcacheAxis&, const DcacheAxis&) = default;
};

/// One value of the TLB axis: disabled (the default) or a TLB geometry —
/// entries/ways/page size — analyzed as a page-granular cache domain
/// (analysis/tlb_domain.hpp) alongside the instruction cache.
struct TlbAxis {
  bool enabled = false;
  std::uint32_t entries = 32;    ///< total translation entries
  std::uint32_t ways = 2;        ///< associativity (entries % ways == 0)
  std::uint32_t page_bytes = 64; ///< page size
  Cycles miss_penalty = 30;      ///< page-walk cost per TLB miss

  /// The TLB expressed as a cache geometry: page-sized lines, entries /
  /// ways sets. Hit latency is 0 — translation hits are folded into the
  /// fetch latency the primary domain charges.
  CacheConfig geometry() const {
    return CacheConfig{entries / ways, ways, page_bytes, 0, miss_penalty};
  }

  friend bool operator==(const TlbAxis&, const TlbAxis&) = default;
};

/// One value of the shared-L2 axis: disabled (the default) or an L2
/// geometry analyzed as a lookup-through unified second level
/// (analysis/l2_domain.hpp) alongside the L1 domains.
struct L2Axis {
  bool enabled = false;
  CacheConfig geometry{};

  friend bool operator==(const L2Axis&, const L2Axis&) = default;
};

/// One axis-per-member cartesian sweep. Empty required axes are rejected
/// by validate(); `engines`, `kinds`, `dcaches`, `dcache_mechanisms` and
/// `sample_counts` default to the common case (one-entry axes that leave
/// the job count unchanged).
struct CampaignSpec {
  std::vector<std::string> tasks;        ///< workload names
  std::vector<CacheConfig> geometries;   ///< (instruction-)cache configs
  std::vector<Probability> pfails;       ///< cell failure probabilities
  std::vector<Mechanism> mechanisms;     ///< none / RW / SRB
  std::vector<WcetEngine> engines{WcetEngine::kIlp};
  std::vector<AnalysisKind> kinds{AnalysisKind::kSpta};
  /// Data-cache axis; the default single "off" entry keeps icache-only
  /// campaigns unchanged. Enabled entries are only valid for SPTA cells.
  std::vector<DcacheAxis> dcaches{DcacheAxis{}};
  /// TLB axis; same default rule. Enabled entries are SPTA-only and use
  /// the job's instruction-cache mechanism (no separate pairing axis).
  std::vector<TlbAxis> tlbs{TlbAxis{}};
  /// Shared-L2 axis; same default and mechanism rule as `tlbs`.
  std::vector<L2Axis> l2s{L2Axis{}};
  /// Data-cache mechanism pairing, crossed with `mechanisms`.
  std::vector<DcacheMechanism> dcache_mechanisms{DcacheMechanism::kSame};
  /// MBPTA / simulation population sizes; 0 = the spec-level defaults
  /// (mbpta.chips, simulation_chips). Ignored by SPTA / slack cells.
  std::vector<std::size_t> sample_counts{0};

  Probability target_exceedance = 1e-15;  ///< pWCET quantile reported
  /// Exceedance probabilities at which every job also records its full
  /// pWCET curve (the distribution sink, engine/report.hpp). Empty =
  /// scalar-only campaign (the default).
  std::vector<Probability> ccdf_exceedances;
  std::size_t max_distribution_points = 2048;
  MbptaOptions mbpta{};             ///< population size etc. for kMbpta
  std::size_t simulation_chips = 1000;  ///< population size for kSimulation
  std::uint64_t base_seed = 0x5eed;

  std::size_t job_count() const {
    return tasks.size() * geometries.size() * pfails.size() *
           mechanisms.size() * engines.size() * kinds.size() *
           dcaches.size() * tlbs.size() * l2s.size() *
           dcache_mechanisms.size() * sample_counts.size();
  }

  void validate() const;
};

/// One cell of the expanded grid: resolved axis values plus the axis
/// indices (for pivoting results back into tables) and the derived seed.
struct CampaignJob {
  std::size_t index = 0;  ///< position in expansion order

  std::size_t task_i = 0, geometry_i = 0, pfail_i = 0;
  std::size_t mechanism_i = 0, engine_i = 0, kind_i = 0;
  std::size_t dcache_i = 0, tlb_i = 0, l2_i = 0, dmech_i = 0, samples_i = 0;

  std::string task;
  CacheConfig geometry;
  Probability pfail = 0.0;
  Mechanism mechanism = Mechanism::kNone;
  WcetEngine engine = WcetEngine::kIlp;
  AnalysisKind kind = AnalysisKind::kSpta;
  DcacheAxis dcache{};
  TlbAxis tlb{};
  L2Axis l2{};
  DcacheMechanism dmech = DcacheMechanism::kSame;
  std::size_t samples = 0;  ///< 0 = spec-level population defaults

  std::uint64_t seed = 0;  ///< per-job RNG seed, derived from the key

  /// Data-cache mechanism with `kSame` resolved against `mechanism`.
  /// Meaningful only when `dcache.enabled`.
  Mechanism resolved_dmech() const;

  /// Stable human-readable id, e.g. "adpcm/16x4x16B/1.0e-04/SRB/ilp/spta".
  /// Non-default extension axes append suffixes ("/D8x4x16B/SRB" for an
  /// enabled data cache — "-wbN" marks a write-back policy with penalty N
  /// — "/T32e2w64B" for a TLB, "/L32x4x32B" for a shared L2, "/n400" for
  /// an explicit sample count), so ids of icache-only cells are unchanged
  /// from earlier releases.
  std::string id() const;
};

/// Seed for one job key (exposed so tests can pin the derivation).
std::uint64_t campaign_job_seed(const CampaignSpec& spec,
                                const CampaignJob& job);

/// Unrolls the sweep in fixed row-major order: tasks outermost, then
/// geometries, pfails, mechanisms, engines, kinds, dcaches, tlbs, l2s,
/// dcache_mechanisms, sample_counts innermost.
std::vector<CampaignJob> expand_campaign(const CampaignSpec& spec);

/// Index of a cell in expansion order (inverse of the job's axis indices).
/// `tlb_i` / `l2_i` sit between dcache_i and dmech_i in expansion order
/// but trail here so call sites predating those axes stay valid.
std::size_t campaign_job_index(const CampaignSpec& spec, std::size_t task_i,
                               std::size_t geometry_i, std::size_t pfail_i,
                               std::size_t mechanism_i,
                               std::size_t engine_i = 0,
                               std::size_t kind_i = 0,
                               std::size_t dcache_i = 0,
                               std::size_t dmech_i = 0,
                               std::size_t samples_i = 0,
                               std::size_t tlb_i = 0,
                               std::size_t l2_i = 0);

/// Shared store-key prefix of a job's analyzer group: the (task, geometry,
/// engine, dcache) values that determine which memoized sub-results
/// (analyzer core, FMM rows) the job can reuse. Derived from the axis
/// *values* (task name, geometry fields), not indices, so duplicated or
/// reordered axis entries land on the same key. The runner submits groups
/// ordered by this prefix (cache-aware ordering): groups about to touch
/// the same memo entries run back to back, maximizing hit locality under a
/// bounded LRU. Results are unaffected — collection is slot-indexed.
StoreKey campaign_group_key(const CampaignJob& job);

/// Content key of a whole spec; names the campaign-report artifact the
/// runner persists when the store's disk tier is enabled.
StoreKey campaign_spec_key(const CampaignSpec& spec);

}  // namespace pwcet
