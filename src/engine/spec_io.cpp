#include "engine/spec_io.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "cfg/basic_block.hpp"
#include "engine/names.hpp"
#include "support/json.hpp"
#include "support/json_doc.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

// The JSON document model + parser live in support/json_doc.{hpp,cpp}
// (shared with the CLI's metrics renderer and the observability tests);
// this file keeps only the campaign-spec schema mapping over it.

[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& message, const std::string& path) {
  std::string out = source;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += message;
  if (!path.empty()) {
    out += " (field \"";
    out += path;
    out += "\")";
  }
  throw SpecError(out);
}

// ---------------------------------------------------------------------------
// Schema mapping: Json document -> SpecDocument, with field-path context.
// ---------------------------------------------------------------------------

/// Levenshtein distance, used only for "did you mean" hints on unknown
/// keys/values — inputs are tiny, the quadratic DP is fine.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = up;
    }
  }
  return row[b.size()];
}

std::string closest_match(const std::string& word,
                          const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = std::max<std::size_t>(2, word.size() / 3) + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t d = edit_distance(word, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string joined(const std::vector<std::string>& values) {
  std::string out;
  for (const std::string& v : values) {
    if (!out.empty()) out += ", ";
    out += v;
  }
  return out;
}

class SpecReader {
 public:
  explicit SpecReader(const std::string& source) : source_(source) {}

  SpecDocument read(const Json& root) {
    if (root.type != Json::Type::kObject)
      fail(source_, root.line,
           std::string("a campaign spec must be a JSON object, got ") +
               root.type_name(),
           "");

    static const std::vector<std::string> kKnownKeys = {
        "name",          "notes",
        "tasks",         "geometries",
        "dcaches",       "tlbs",
        "l2s",           "pfails",
        "mechanisms",    "dcache_mechanisms",
        "engines",       "kinds",
        "sample_counts", "target_exceedance",
        "ccdf_exceedances", "max_distribution_points",
        "mbpta",         "simulation_chips",
        "base_seed"};

    SpecDocument doc;
    CampaignSpec& spec = doc.spec;  // absent keys keep the C++ defaults

    bool saw_tasks = false, saw_geometries = false, saw_pfails = false;
    bool saw_mechanisms = false;

    for (const auto& [key, value] : root.object) {
      if (key == "name") {
        doc.name = as_string(value, key);
      } else if (key == "notes") {
        doc.notes = as_string(value, key);
      } else if (key == "tasks") {
        spec.tasks = read_tasks(value);
        saw_tasks = true;
      } else if (key == "geometries") {
        spec.geometries = read_geometries(value);
        saw_geometries = true;
      } else if (key == "pfails") {
        spec.pfails = read_pfails(value);
        saw_pfails = true;
      } else if (key == "dcaches") {
        spec.dcaches = read_dcaches(value);
      } else if (key == "tlbs") {
        spec.tlbs = read_tlbs(value);
      } else if (key == "l2s") {
        spec.l2s = read_l2s(value);
      } else if (key == "mechanisms") {
        // All enum axes parse against the axis-name registry
        // (engine/names.hpp), the same tables the reports and `pwcet
        // list` print from.
        spec.mechanisms = read_enums<Mechanism>(
            value, key, axis_name_table(mechanism_names()), "mechanism");
        saw_mechanisms = true;
      } else if (key == "dcache_mechanisms") {
        spec.dcache_mechanisms = read_enums<DcacheMechanism>(
            value, key, axis_name_table(dcache_mechanism_names()),
            "dcache mechanism");
      } else if (key == "engines") {
        spec.engines = read_enums<WcetEngine>(
            value, key, axis_name_table(engine_names()), "engine");
      } else if (key == "kinds") {
        spec.kinds = read_enums<AnalysisKind>(
            value, key, axis_name_table(analysis_kind_names()),
            "analysis kind");
      } else if (key == "sample_counts") {
        spec.sample_counts = read_sample_counts(value);
      } else if (key == "ccdf_exceedances") {
        spec.ccdf_exceedances = read_ccdf_exceedances(value);
      } else if (key == "target_exceedance") {
        spec.target_exceedance = as_number(value, key);
        if (!(spec.target_exceedance > 0.0 && spec.target_exceedance <= 1.0))
          fail(source_, value.line,
               "target_exceedance must be in (0, 1]", key);
      } else if (key == "max_distribution_points") {
        spec.max_distribution_points =
            static_cast<std::size_t>(as_u64(value, key));
        if (spec.max_distribution_points < 2)
          fail(source_, value.line,
               "max_distribution_points must be at least 2", key);
      } else if (key == "mbpta") {
        read_mbpta(value, spec.mbpta);
      } else if (key == "simulation_chips") {
        spec.simulation_chips = static_cast<std::size_t>(as_u64(value, key));
        if (spec.simulation_chips == 0)
          fail(source_, value.line, "simulation_chips must be positive", key);
      } else if (key == "base_seed") {
        spec.base_seed = as_u64(value, key);
      } else {
        std::string message = "unknown key \"" + key + "\" in campaign spec";
        const std::string hint = closest_match(key, kKnownKeys);
        if (!hint.empty()) message += " — did you mean \"" + hint + "\"?";
        fail(source_, value.line, message, key);
      }
    }

    if (!saw_tasks)
      fail(source_, root.line, "missing required key \"tasks\"", "tasks");
    if (!saw_geometries)
      fail(source_, root.line, "missing required key \"geometries\"",
           "geometries");
    if (!saw_pfails)
      fail(source_, root.line, "missing required key \"pfails\"", "pfails");
    if (!saw_mechanisms)
      fail(source_, root.line, "missing required key \"mechanisms\"",
           "mechanisms");

    // Cross-field constraints mirrored from CampaignSpec::validate(),
    // which would otherwise abort instead of reporting.
    const auto wants = [&spec](AnalysisKind kind) {
      return std::find(spec.kinds.begin(), spec.kinds.end(), kind) !=
             spec.kinds.end();
    };
    if (wants(AnalysisKind::kMbpta)) {
      if (spec.mbpta.chips < 2 * spec.mbpta.block_size)
        fail(source_, root.line,
             "mbpta.chips must be at least 2 * mbpta.block_size when "
             "\"kinds\" includes \"mbpta\"",
             "mbpta.chips");
      for (std::size_t i = 0; i < spec.sample_counts.size(); ++i)
        if (spec.sample_counts[i] != 0 &&
            spec.sample_counts[i] < 2 * spec.mbpta.block_size)
          fail(source_, root.line,
               "sample_counts entries must be at least 2 * mbpta.block_size "
               "(or 0 for the default) when \"kinds\" includes \"mbpta\"",
               "sample_counts[" + std::to_string(i) + "]");
    }
    bool any_dcache = false;
    for (const DcacheAxis& d : spec.dcaches) any_dcache |= d.enabled;
    if (any_dcache)
      for (const AnalysisKind kind : spec.kinds)
        if (kind != AnalysisKind::kSpta)
          fail(source_, root.line,
               "kind \"" + analysis_kind_name(kind) +
                   "\" does not support a data cache; \"dcaches\" entries "
                   "other than null need kinds = [\"spta\"]",
               "dcaches");
    bool any_tlb = false;
    for (const TlbAxis& t : spec.tlbs) any_tlb |= t.enabled;
    if (any_tlb)
      for (const AnalysisKind kind : spec.kinds)
        if (kind != AnalysisKind::kSpta)
          fail(source_, root.line,
               "kind \"" + analysis_kind_name(kind) +
                   "\" does not support a TLB; \"tlbs\" entries other than "
                   "null need kinds = [\"spta\"]",
               "tlbs");
    bool any_l2 = false;
    for (const L2Axis& l : spec.l2s) any_l2 |= l.enabled;
    if (any_l2)
      for (const AnalysisKind kind : spec.kinds)
        if (kind != AnalysisKind::kSpta)
          fail(source_, root.line,
               "kind \"" + analysis_kind_name(kind) +
                   "\" does not support a shared L2; \"l2s\" entries other "
                   "than null need kinds = [\"spta\"]",
               "l2s");
    if (wants(AnalysisKind::kSlack))
      for (std::size_t i = 0; i < spec.mechanisms.size(); ++i)
        if (spec.mechanisms[i] == Mechanism::kNone)
          fail(source_, root.line,
               "kind \"slack\" measures a reliability mechanism's "
               "conservatism; \"mechanisms\" must contain only \"SRB\" / "
               "\"RW\"",
               "mechanisms[" + std::to_string(i) + "]");

    return doc;
  }

 private:
  const Json& expect_type(const Json& value, Json::Type type,
                          const char* what, const std::string& path) {
    if (value.type != type)
      fail(source_, value.line,
           std::string("expected ") + what + ", got " + value.type_name(),
           path);
    return value;
  }

  std::string as_string(const Json& value, const std::string& path) {
    return expect_type(value, Json::Type::kString, "a string", path).string;
  }

  double as_number(const Json& value, const std::string& path) {
    return expect_type(value, Json::Type::kNumber, "a number", path).number;
  }

  /// Unsigned 64-bit field: a plain integer, or (for values above 2^53,
  /// which JSON numbers cannot carry exactly) a string of decimal digits.
  std::uint64_t as_u64(const Json& value, const std::string& path) {
    if (value.type == Json::Type::kString) {
      const std::string& s = value.string;
      if (!s.empty() &&
          std::all_of(s.begin(), s.end(),
                      [](unsigned char c) { return std::isdigit(c); })) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
        if (errno == 0 && end == s.c_str() + s.size())
          return parsed;
      }
      fail(source_, value.line,
           "expected a non-negative integer (number or decimal string)",
           path);
    }
    expect_type(value, Json::Type::kNumber, "a non-negative integer", path);
    if (!value.integral) {
      const char* what =
          "expected a non-negative integer, got a non-integral number";
      if (value.number < 0)
        what = "expected a non-negative integer, got a negative number";
      else if (value.integer_overflow)
        what = "integer does not fit in 64 bits";
      fail(source_, value.line, what, path);
    }
    return value.integer;
  }

  std::uint32_t as_u32(const Json& value, const std::string& path) {
    const std::uint64_t wide = as_u64(value, path);
    if (wide > std::numeric_limits<std::uint32_t>::max())
      fail(source_, value.line, "value does not fit in 32 bits", path);
    return static_cast<std::uint32_t>(wide);
  }

  /// Cycle counts are signed 64-bit downstream; values beyond int64 max
  /// would wrap negative through the cast and trip the abort-style
  /// contract checks this loader promises to shield.
  Cycles as_cycles(const Json& value, const std::string& path) {
    const std::uint64_t wide = as_u64(value, path);
    if (wide > static_cast<std::uint64_t>(std::numeric_limits<Cycles>::max()))
      fail(source_, value.line,
           "value does not fit in a signed 64-bit cycle count", path);
    return static_cast<Cycles>(wide);
  }

  std::vector<std::string> read_tasks(const Json& value) {
    expect_type(value, Json::Type::kArray, "an array of task names", "tasks");
    if (value.array.empty())
      fail(source_, value.line, "\"tasks\" must not be empty", "tasks");
    const std::vector<std::string> known = workloads::all_names();
    std::vector<std::string> tasks;
    tasks.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "tasks[" + std::to_string(i) + "]";
      const std::string task = as_string(value.array[i], path);
      if (std::find(known.begin(), known.end(), task) == known.end()) {
        std::string message = "unknown task \"" + task + "\"";
        const std::string hint = closest_match(task, known);
        if (!hint.empty()) message += " — did you mean \"" + hint + "\"?";
        message += " (`pwcet list` prints the built-in tasks)";
        fail(source_, value.array[i].line, message, path);
      }
      tasks.push_back(task);
    }
    return tasks;
  }

  std::vector<CacheConfig> read_geometries(const Json& value) {
    expect_type(value, Json::Type::kArray, "an array of geometry objects",
                "geometries");
    if (value.array.empty())
      fail(source_, value.line, "\"geometries\" must not be empty",
           "geometries");
    std::vector<CacheConfig> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i)
      out.push_back(read_geometry(value.array[i],
                                  "geometries[" + std::to_string(i) + "]"));
    return out;
  }

  CacheConfig read_geometry(const Json& value, const std::string& path) {
    expect_type(value, Json::Type::kObject, "a geometry object", path);
    static const std::vector<std::string> kKeys = {
        "sets", "ways", "line_bytes", "hit_latency", "miss_penalty"};
    CacheConfig config;
    bool saw_sets = false, saw_ways = false, saw_line_bytes = false;
    for (const auto& [key, field] : value.object) {
      const std::string field_path = path + "." + key;
      if (key == "sets") {
        config.sets = as_u32(field, field_path);
        saw_sets = true;
      } else if (key == "ways") {
        config.ways = as_u32(field, field_path);
        saw_ways = true;
      } else if (key == "line_bytes") {
        config.line_bytes = as_u32(field, field_path);
        saw_line_bytes = true;
      } else if (key == "hit_latency") {
        config.hit_latency = as_cycles(field, field_path);
      } else if (key == "miss_penalty") {
        config.miss_penalty = as_cycles(field, field_path);
      } else {
        std::string message = "unknown key \"" + key + "\" in geometry";
        const std::string hint = closest_match(key, kKeys);
        if (!hint.empty()) message += " — did you mean \"" + hint + "\"?";
        fail(source_, field.line, message, field_path);
      }
    }
    if (!saw_sets)
      fail(source_, value.line, "geometry is missing \"sets\"", path + ".sets");
    if (!saw_ways)
      fail(source_, value.line, "geometry is missing \"ways\"", path + ".ways");
    if (!saw_line_bytes)
      fail(source_, value.line, "geometry is missing \"line_bytes\"",
           path + ".line_bytes");
    if (config.sets == 0)
      fail(source_, value.line, "sets must be positive", path + ".sets");
    if (config.ways == 0)
      fail(source_, value.line, "ways must be positive", path + ".ways");
    if (config.line_bytes == 0 || config.line_bytes % kInstructionBytes != 0)
      fail(source_, value.line,
           "line_bytes must be a positive multiple of " +
               std::to_string(kInstructionBytes) + " (the instruction size)",
           path + ".line_bytes");
    return config;
  }

  WritePolicy read_write_policy(const Json& field, const std::string& path) {
    const std::string name = as_string(field, path);
    const std::string folded = lowercase(name);
    std::vector<std::string> names;
    for (const AxisName<WritePolicy>& entry : write_policy_names()) {
      if (folded == lowercase(entry.name)) return entry.value;
      names.push_back(entry.name);
    }
    fail(source_, field.line,
         "unknown write policy \"" + name + "\"; valid values: " +
             joined(names),
         path);
  }

  /// The data-cache axis: each entry is `null` (data cache off, the
  /// default analysis) or a geometry object, optionally extended with
  /// `"policy": "write_back"` and a `writeback_penalty` (cycles charged
  /// per dirty eviction; the analysis folds it into the miss penalty —
  /// see analysis/writeback_dcache_domain.hpp for why that is sound).
  std::vector<DcacheAxis> read_dcaches(const Json& value) {
    expect_type(value, Json::Type::kArray,
                "an array of null (off) or geometry objects", "dcaches");
    if (value.array.empty())
      fail(source_, value.line, "\"dcaches\" must not be empty", "dcaches");
    static const std::vector<std::string> kGeometryKeys = {
        "sets", "ways", "line_bytes", "hit_latency", "miss_penalty"};
    static const std::vector<std::string> kKeys = {
        "sets",        "ways",   "line_bytes",        "hit_latency",
        "miss_penalty", "policy", "writeback_penalty"};
    std::vector<DcacheAxis> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "dcaches[" + std::to_string(i) + "]";
      const Json& entry = value.array[i];
      DcacheAxis axis;
      if (entry.type == Json::Type::kNull) {
        out.push_back(axis);  // disabled
        continue;
      }
      if (entry.type != Json::Type::kObject)
        fail(source_, entry.line,
             std::string("expected null (data cache off) or a geometry "
                         "object, got ") +
                 entry.type_name(),
             path);
      axis.enabled = true;
      // Split the entry: the policy fields are handled here, everything
      // else flows through read_geometry so the geometry diagnostics
      // (required keys, line_bytes alignment) stay in one place.
      Json geometry = entry;
      geometry.object.clear();
      bool saw_penalty = false;
      for (const auto& [key, field] : entry.object) {
        const std::string field_path = path + "." + key;
        if (key == "policy") {
          axis.policy = read_write_policy(field, field_path);
        } else if (key == "writeback_penalty") {
          axis.writeback_penalty = as_cycles(field, field_path);
          saw_penalty = true;
        } else if (std::find(kGeometryKeys.begin(), kGeometryKeys.end(),
                             key) != kGeometryKeys.end()) {
          geometry.object.emplace_back(key, field);
        } else {
          std::string message =
              "unknown key \"" + key + "\" in data-cache entry";
          const std::string hint = closest_match(key, kKeys);
          if (!hint.empty()) message += " — did you mean \"" + hint + "\"?";
          fail(source_, field.line, message, field_path);
        }
      }
      axis.geometry = read_geometry(geometry, path);
      if (saw_penalty && axis.policy != WritePolicy::kWriteBack)
        fail(source_, entry.line,
             "\"writeback_penalty\" needs \"policy\": \"write_back\" (a "
             "write-through data cache never writes lines back)",
             path + ".writeback_penalty");
      out.push_back(axis);
    }
    return out;
  }

  /// The TLB axis: each entry is `null` (TLB off) or an object with
  /// `entries`, `ways`, `page_bytes` and an optional `miss_penalty`.
  std::vector<TlbAxis> read_tlbs(const Json& value) {
    expect_type(value, Json::Type::kArray,
                "an array of null (off) or TLB objects", "tlbs");
    if (value.array.empty())
      fail(source_, value.line, "\"tlbs\" must not be empty", "tlbs");
    static const std::vector<std::string> kKeys = {"entries", "ways",
                                                   "page_bytes",
                                                   "miss_penalty"};
    std::vector<TlbAxis> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "tlbs[" + std::to_string(i) + "]";
      const Json& entry = value.array[i];
      TlbAxis axis;
      if (entry.type == Json::Type::kNull) {
        out.push_back(axis);  // disabled
        continue;
      }
      if (entry.type != Json::Type::kObject)
        fail(source_, entry.line,
             std::string("expected null (TLB off) or a TLB object, got ") +
                 entry.type_name(),
             path);
      axis.enabled = true;
      bool saw_entries = false, saw_ways = false, saw_page_bytes = false;
      for (const auto& [key, field] : entry.object) {
        const std::string field_path = path + "." + key;
        if (key == "entries") {
          axis.entries = as_u32(field, field_path);
          saw_entries = true;
        } else if (key == "ways") {
          axis.ways = as_u32(field, field_path);
          saw_ways = true;
        } else if (key == "page_bytes") {
          axis.page_bytes = as_u32(field, field_path);
          saw_page_bytes = true;
        } else if (key == "miss_penalty") {
          axis.miss_penalty = as_cycles(field, field_path);
        } else {
          std::string message = "unknown key \"" + key + "\" in TLB entry";
          const std::string hint = closest_match(key, kKeys);
          if (!hint.empty()) message += " — did you mean \"" + hint + "\"?";
          fail(source_, field.line, message, field_path);
        }
      }
      if (!saw_entries)
        fail(source_, entry.line, "TLB entry is missing \"entries\"",
             path + ".entries");
      if (!saw_ways)
        fail(source_, entry.line, "TLB entry is missing \"ways\"",
             path + ".ways");
      if (!saw_page_bytes)
        fail(source_, entry.line, "TLB entry is missing \"page_bytes\"",
             path + ".page_bytes");
      if (axis.ways == 0)
        fail(source_, entry.line, "ways must be positive", path + ".ways");
      if (axis.entries == 0 || axis.entries % axis.ways != 0)
        fail(source_, entry.line,
             "entries must be a positive multiple of ways (the TLB is "
             "modeled as entries/ways sets of `ways` translations)",
             path + ".entries");
      if (axis.page_bytes == 0 ||
          axis.page_bytes % kInstructionBytes != 0)
        fail(source_, entry.line,
             "page_bytes must be a positive multiple of " +
                 std::to_string(kInstructionBytes) +
                 " (the instruction size)",
             path + ".page_bytes");
      out.push_back(axis);
    }
    return out;
  }

  /// The shared-L2 axis: each entry is `null` (no L2) or a geometry
  /// object (the L2 is lookup-through; hit_latency/miss_penalty price
  /// the *incremental* L2 cost per reference).
  std::vector<L2Axis> read_l2s(const Json& value) {
    expect_type(value, Json::Type::kArray,
                "an array of null (off) or geometry objects", "l2s");
    if (value.array.empty())
      fail(source_, value.line, "\"l2s\" must not be empty", "l2s");
    std::vector<L2Axis> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "l2s[" + std::to_string(i) + "]";
      const Json& entry = value.array[i];
      L2Axis axis;
      if (entry.type == Json::Type::kNull) {
        out.push_back(axis);  // disabled
        continue;
      }
      if (entry.type != Json::Type::kObject)
        fail(source_, entry.line,
             std::string("expected null (no shared L2) or a geometry "
                         "object, got ") +
                 entry.type_name(),
             path);
      axis.enabled = true;
      axis.geometry = read_geometry(entry, path);
      out.push_back(axis);
    }
    return out;
  }

  std::vector<std::size_t> read_sample_counts(const Json& value) {
    expect_type(value, Json::Type::kArray, "an array of sample counts",
                "sample_counts");
    if (value.array.empty())
      fail(source_, value.line, "\"sample_counts\" must not be empty",
           "sample_counts");
    std::vector<std::size_t> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "sample_counts[" + std::to_string(i) + "]";
      out.push_back(static_cast<std::size_t>(as_u64(value.array[i], path)));
    }
    return out;
  }

  std::vector<Probability> read_ccdf_exceedances(const Json& value) {
    expect_type(value, Json::Type::kArray,
                "an array of exceedance probabilities", "ccdf_exceedances");
    std::vector<Probability> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "ccdf_exceedances[" + std::to_string(i) + "]";
      const double p = as_number(value.array[i], path);
      if (!(p > 0.0 && p <= 1.0))
        fail(source_, value.array[i].line,
             "exceedance probability must be in (0, 1]", path);
      out.push_back(p);
    }
    return out;
  }

  std::vector<Probability> read_pfails(const Json& value) {
    expect_type(value, Json::Type::kArray, "an array of probabilities",
                "pfails");
    if (value.array.empty())
      fail(source_, value.line, "\"pfails\" must not be empty", "pfails");
    std::vector<Probability> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = "pfails[" + std::to_string(i) + "]";
      const double p = as_number(value.array[i], path);
      if (!(p >= 0.0 && p <= 1.0))
        fail(source_, value.array[i].line,
             "cell failure probability must be in [0, 1]", path);
      out.push_back(p);
    }
    return out;
  }

  template <typename Enum>
  std::vector<Enum> read_enums(
      const Json& value, const std::string& key,
      const std::vector<std::pair<std::string, Enum>>& table,
      const char* what) {
    expect_type(value, Json::Type::kArray,
                (std::string("an array of ") + what + " names").c_str(), key);
    if (value.array.empty())
      fail(source_, value.line, "\"" + key + "\" must not be empty", key);
    std::vector<std::string> names;
    names.reserve(table.size());
    for (const auto& [name, unused] : table) {
      (void)unused;
      names.push_back(name);
    }
    std::vector<Enum> out;
    out.reserve(value.array.size());
    for (std::size_t i = 0; i < value.array.size(); ++i) {
      const std::string path = key + "[" + std::to_string(i) + "]";
      const std::string name = as_string(value.array[i], path);
      const std::string folded = lowercase(name);
      bool found = false;
      for (const auto& [candidate, enumerator] : table) {
        if (folded == lowercase(candidate)) {
          out.push_back(enumerator);
          found = true;
          break;
        }
      }
      if (!found)
        fail(source_, value.array[i].line,
             std::string("unknown ") + what + " \"" + name +
                 "\"; valid values: " + joined(names),
             path);
    }
    return out;
  }

  void read_mbpta(const Json& value, MbptaOptions& options) {
    expect_type(value, Json::Type::kObject, "an object", "mbpta");
    static const std::vector<std::string> kKeys = {"chips", "block_size",
                                                   "seed"};
    for (const auto& [key, field] : value.object) {
      const std::string path = "mbpta." + key;
      if (key == "chips") {
        options.chips = static_cast<std::size_t>(as_u64(field, path));
        if (options.chips == 0)
          fail(source_, field.line, "mbpta.chips must be positive", path);
      } else if (key == "block_size") {
        options.block_size = static_cast<std::size_t>(as_u64(field, path));
        if (options.block_size == 0)
          fail(source_, field.line, "mbpta.block_size must be positive", path);
      } else if (key == "seed") {
        options.seed = as_u64(field, path);
      } else {
        std::string message = "unknown key \"" + key + "\" in mbpta options";
        const std::string hint = closest_match(key, kKeys);
        if (!hint.empty()) message += " — did you mean \"" + hint + "\"?";
        fail(source_, field.line, message, path);
      }
    }
  }

  const std::string& source_;
};

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

/// Shortest decimal string that parses back to exactly `value` — nicer to
/// read than a flat %.17g (1e-15 stays "1e-15") while still bit-exact, which
/// the spec -> JSON -> spec round-trip (campaign_spec_key equality) needs.
std::string fmt_shortest_exact(double value) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  return buf;
}

std::string fmt_u64_json(std::uint64_t value) {
  // Values above 2^53 would be rounded by double-based JSON readers (and
  // by our own parser's strtod fallback); ship them as decimal strings.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  if (value > (std::uint64_t{1} << 53)) return std::string("\"") + buf + "\"";
  return buf;
}

template <typename T, typename Fn>
std::string json_array(const std::vector<T>& values, Fn&& render) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += render(values[i]);
  }
  out += ']';
  return out;
}

}  // namespace

SpecDocument parse_spec(const std::string& text, const std::string& source) {
  // Syntax errors surface as SpecError like every other spec problem; the
  // shared parser's diagnostics already carry source and line.
  Json root;
  try {
    root = parse_json(text, source);
  } catch (const JsonParseError& e) {
    throw SpecError(e.what());
  }
  SpecDocument doc = SpecReader(source).read(root);
  // The reader enforces a superset of validate()'s conditions with real
  // diagnostics; this call is a belt-and-braces check that the two never
  // drift (it aborts, so it must be unreachable for parsed specs).
  doc.spec.validate();
  return doc;
}

SpecDocument load_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError(path + ": cannot open spec file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw SpecError(path + ": error reading spec file");
  return parse_spec(buffer.str(), path);
}

SpecDocument load_spec_for_mechanism_tables(const std::string& path) {
  SpecDocument doc = load_spec(path);
  if (doc.spec.mechanisms !=
      std::vector<Mechanism>{Mechanism::kNone,
                             Mechanism::kSharedReliableBuffer,
                             Mechanism::kReliableWay})
    throw SpecError(path +
                    ": these tables need mechanisms [\"none\", \"SRB\", "
                    "\"RW\"] in that order; use `pwcet run` for other "
                    "shapes");
  return doc;
}

std::string spec_to_json(const CampaignSpec& spec, const std::string& name,
                         const std::string& notes) {
  std::string out = "{\n";
  auto field = [&out](const std::string& key, const std::string& value,
                      bool last = false) {
    out += "  ";
    out += json_quote(key);
    out += ": ";
    out += value;
    if (!last) out += ',';
    out += '\n';
  };

  const auto geometry_json = [](const CacheConfig& g) {
    return "{\"sets\": " + std::to_string(g.sets) +
           ", \"ways\": " + std::to_string(g.ways) +
           ", \"line_bytes\": " + std::to_string(g.line_bytes) +
           ", \"hit_latency\": " + std::to_string(g.hit_latency) +
           ", \"miss_penalty\": " + std::to_string(g.miss_penalty) + "}";
  };

  if (!name.empty()) field("name", json_quote(name));
  if (!notes.empty()) field("notes", json_quote(notes));
  field("tasks", json_array(spec.tasks, json_quote));
  std::string geometries = "[\n";
  for (std::size_t i = 0; i < spec.geometries.size(); ++i) {
    geometries += "    " + geometry_json(spec.geometries[i]);
    geometries += i + 1 < spec.geometries.size() ? ",\n" : "\n";
  }
  geometries += "  ]";
  field("geometries", geometries);
  field("dcaches", json_array(spec.dcaches, [&](const DcacheAxis& d) {
          if (!d.enabled) return std::string("null");
          std::string entry = geometry_json(d.geometry);
          if (d.policy == WritePolicy::kWriteBack) {
            entry.pop_back();  // reopen the geometry object
            entry += ", \"policy\": " + json_quote(write_policy_name(d.policy)) +
                     ", \"writeback_penalty\": " +
                     std::to_string(d.writeback_penalty) + "}";
          }
          return entry;
        }));
  field("tlbs", json_array(spec.tlbs, [](const TlbAxis& t) {
          if (!t.enabled) return std::string("null");
          return "{\"entries\": " + std::to_string(t.entries) +
                 ", \"ways\": " + std::to_string(t.ways) +
                 ", \"page_bytes\": " + std::to_string(t.page_bytes) +
                 ", \"miss_penalty\": " + std::to_string(t.miss_penalty) +
                 "}";
        }));
  field("l2s", json_array(spec.l2s, [&](const L2Axis& l) {
          return l.enabled ? geometry_json(l.geometry) : std::string("null");
        }));
  field("pfails", json_array(spec.pfails, fmt_shortest_exact));
  field("mechanisms", json_array(spec.mechanisms, [](Mechanism m) {
          return json_quote(mechanism_name(m));
        }));
  field("dcache_mechanisms",
        json_array(spec.dcache_mechanisms, [](DcacheMechanism m) {
          return json_quote(dcache_mechanism_name(m));
        }));
  field("engines", json_array(spec.engines, [](WcetEngine e) {
          return json_quote(engine_name(e));
        }));
  field("kinds", json_array(spec.kinds, [](AnalysisKind k) {
          return json_quote(analysis_kind_name(k));
        }));
  field("sample_counts",
        json_array(spec.sample_counts, [](std::size_t n) {
          return std::to_string(n);
        }));
  field("target_exceedance", fmt_shortest_exact(spec.target_exceedance));
  field("ccdf_exceedances",
        json_array(spec.ccdf_exceedances, fmt_shortest_exact));
  field("max_distribution_points",
        std::to_string(spec.max_distribution_points));
  field("mbpta", "{\"chips\": " + std::to_string(spec.mbpta.chips) +
                     ", \"block_size\": " +
                     std::to_string(spec.mbpta.block_size) +
                     ", \"seed\": " + fmt_u64_json(spec.mbpta.seed) + "}");
  field("simulation_chips", std::to_string(spec.simulation_chips));
  field("base_seed", fmt_u64_json(spec.base_seed), /*last=*/true);
  out += "}\n";
  return out;
}

}  // namespace pwcet
