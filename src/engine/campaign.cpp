#include "engine/campaign.hpp"

#include <bit>
#include <cstdio>

#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

/// FNV-1a over a string, as one 64-bit stream id per task name.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_geometry(const CacheConfig& g) {
  std::uint64_t h = g.sets;
  h = h * 0x100000001b3ULL + g.ways;
  h = h * 0x100000001b3ULL + g.line_bytes;
  h = h * 0x100000001b3ULL + static_cast<std::uint64_t>(g.hit_latency);
  h = h * 0x100000001b3ULL + static_cast<std::uint64_t>(g.miss_penalty);
  return h;
}

}  // namespace

std::string analysis_kind_name(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kSpta:
      return "spta";
    case AnalysisKind::kMbpta:
      return "mbpta";
    case AnalysisKind::kSimulation:
      return "sim";
  }
  return "?";
}

std::string engine_name(WcetEngine engine) {
  return engine == WcetEngine::kIlp ? "ilp" : "tree";
}

void CampaignSpec::validate() const {
  PWCET_EXPECTS(!tasks.empty());
  PWCET_EXPECTS(!geometries.empty());
  PWCET_EXPECTS(!pfails.empty());
  PWCET_EXPECTS(!mechanisms.empty());
  PWCET_EXPECTS(!engines.empty());
  PWCET_EXPECTS(!kinds.empty());
  PWCET_EXPECTS(target_exceedance > 0.0 && target_exceedance <= 1.0);
  PWCET_EXPECTS(max_distribution_points >= 2);
  for (const CacheConfig& g : geometries) g.validate();
  for (const Probability p : pfails) PWCET_EXPECTS(p >= 0.0 && p <= 1.0);
  for (const AnalysisKind kind : kinds) {
    if (kind == AnalysisKind::kMbpta)
      PWCET_EXPECTS(mbpta.chips >= 2 * mbpta.block_size);
    if (kind == AnalysisKind::kSimulation)
      PWCET_EXPECTS(simulation_chips > 0);
  }
}

std::string CampaignJob::id() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s/%ux%ux%uB/%.1e/%s/%s/%s", task.c_str(),
                geometry.sets, geometry.ways, geometry.line_bytes, pfail,
                mechanism_name(mechanism).c_str(),
                engine_name(engine).c_str(),
                analysis_kind_name(kind).c_str());
  return buf;
}

std::uint64_t campaign_job_seed(const CampaignSpec& spec,
                                const CampaignJob& job) {
  // Chain every key field through the seed so two jobs differing in any
  // axis value get unrelated streams; fields are hashed by *value* so the
  // seed is invariant under reordering / extending the spec's axes.
  std::uint64_t seed = spec.base_seed;
  seed = Rng::derive_seed(seed, hash_name(job.task));
  seed = Rng::derive_seed(seed, hash_geometry(job.geometry));
  seed = Rng::derive_seed(seed, std::bit_cast<std::uint64_t>(job.pfail));
  seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.mechanism));
  seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.engine));
  seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.kind));
  return seed;
}

std::vector<CampaignJob> expand_campaign(const CampaignSpec& spec) {
  spec.validate();
  std::vector<CampaignJob> jobs;
  jobs.reserve(spec.job_count());
  for (std::size_t t = 0; t < spec.tasks.size(); ++t)
    for (std::size_t g = 0; g < spec.geometries.size(); ++g)
      for (std::size_t p = 0; p < spec.pfails.size(); ++p)
        for (std::size_t m = 0; m < spec.mechanisms.size(); ++m)
          for (std::size_t e = 0; e < spec.engines.size(); ++e)
            for (std::size_t k = 0; k < spec.kinds.size(); ++k) {
              CampaignJob job;
              job.index = jobs.size();
              job.task_i = t;
              job.geometry_i = g;
              job.pfail_i = p;
              job.mechanism_i = m;
              job.engine_i = e;
              job.kind_i = k;
              job.task = spec.tasks[t];
              job.geometry = spec.geometries[g];
              job.pfail = spec.pfails[p];
              job.mechanism = spec.mechanisms[m];
              job.engine = spec.engines[e];
              job.kind = spec.kinds[k];
              job.seed = campaign_job_seed(spec, job);
              jobs.push_back(std::move(job));
            }
  return jobs;
}

StoreKey campaign_group_key(const CampaignJob& job) {
  return KeyHasher("campaign-group-v1")
      .mix_string(job.task)
      .mix_key(hash_cache_config(job.geometry))
      .mix_u64(static_cast<std::uint64_t>(job.engine))
      .finish();
}

StoreKey campaign_spec_key(const CampaignSpec& spec) {
  KeyHasher h("campaign-spec-v1");
  h.mix_u64(spec.tasks.size());
  for (const std::string& task : spec.tasks) {
    // Name *and* structural content: the name reaches the report's task
    // column, and the content guards the persistent campaign-report
    // artifact against serving stale results after a workload definition
    // changes (names rarely do; loop bounds etc. might) — consistent with
    // the core/result keys, which chain hash_program too.
    h.mix_string(task);
    h.mix_key(hash_program(workloads::build(task)));
  }
  h.mix_u64(spec.geometries.size());
  for (const CacheConfig& g : spec.geometries) h.mix_key(hash_cache_config(g));
  h.mix_doubles(spec.pfails);
  h.mix_u64(spec.mechanisms.size());
  for (const Mechanism m : spec.mechanisms)
    h.mix_u64(static_cast<std::uint64_t>(m));
  h.mix_u64(spec.engines.size());
  for (const WcetEngine e : spec.engines)
    h.mix_u64(static_cast<std::uint64_t>(e));
  h.mix_u64(spec.kinds.size());
  for (const AnalysisKind k : spec.kinds)
    h.mix_u64(static_cast<std::uint64_t>(k));
  h.mix_double(spec.target_exceedance);
  h.mix_u64(spec.max_distribution_points);
  h.mix_u64(spec.mbpta.chips);
  h.mix_u64(spec.mbpta.block_size);
  h.mix_u64(spec.mbpta.seed);
  h.mix_u64(spec.simulation_chips);
  h.mix_u64(spec.base_seed);
  return h.finish();
}

std::size_t campaign_job_index(const CampaignSpec& spec, std::size_t task_i,
                               std::size_t geometry_i, std::size_t pfail_i,
                               std::size_t mechanism_i, std::size_t engine_i,
                               std::size_t kind_i) {
  PWCET_EXPECTS(task_i < spec.tasks.size());
  PWCET_EXPECTS(geometry_i < spec.geometries.size());
  PWCET_EXPECTS(pfail_i < spec.pfails.size());
  PWCET_EXPECTS(mechanism_i < spec.mechanisms.size());
  PWCET_EXPECTS(engine_i < spec.engines.size());
  PWCET_EXPECTS(kind_i < spec.kinds.size());
  std::size_t index = task_i;
  index = index * spec.geometries.size() + geometry_i;
  index = index * spec.pfails.size() + pfail_i;
  index = index * spec.mechanisms.size() + mechanism_i;
  index = index * spec.engines.size() + engine_i;
  index = index * spec.kinds.size() + kind_i;
  return index;
}

}  // namespace pwcet
