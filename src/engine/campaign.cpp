#include "engine/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

/// FNV-1a over a string, as one 64-bit stream id per task name.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_geometry(const CacheConfig& g) {
  std::uint64_t h = g.sets;
  h = h * 0x100000001b3ULL + g.ways;
  h = h * 0x100000001b3ULL + g.line_bytes;
  h = h * 0x100000001b3ULL + static_cast<std::uint64_t>(g.hit_latency);
  h = h * 0x100000001b3ULL + static_cast<std::uint64_t>(g.miss_penalty);
  return h;
}

bool contains(const std::vector<AnalysisKind>& kinds, AnalysisKind kind) {
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

}  // namespace

Mechanism CampaignJob::resolved_dmech() const {
  switch (dmech) {
    case DcacheMechanism::kSame:
      return mechanism;
    case DcacheMechanism::kNone:
      return Mechanism::kNone;
    case DcacheMechanism::kReliableWay:
      return Mechanism::kReliableWay;
    case DcacheMechanism::kSharedReliableBuffer:
      return Mechanism::kSharedReliableBuffer;
  }
  return mechanism;
}

void CampaignSpec::validate() const {
  PWCET_EXPECTS(!tasks.empty());
  PWCET_EXPECTS(!geometries.empty());
  PWCET_EXPECTS(!pfails.empty());
  PWCET_EXPECTS(!mechanisms.empty());
  PWCET_EXPECTS(!engines.empty());
  PWCET_EXPECTS(!kinds.empty());
  PWCET_EXPECTS(!dcaches.empty());
  PWCET_EXPECTS(!dcache_mechanisms.empty());
  PWCET_EXPECTS(!sample_counts.empty());
  PWCET_EXPECTS(target_exceedance > 0.0 && target_exceedance <= 1.0);
  PWCET_EXPECTS(max_distribution_points >= 2);
  for (const CacheConfig& g : geometries) g.validate();
  for (const Probability p : pfails) PWCET_EXPECTS(p >= 0.0 && p <= 1.0);
  for (const Probability p : ccdf_exceedances)
    PWCET_EXPECTS(p > 0.0 && p <= 1.0);
  PWCET_EXPECTS(!tlbs.empty());
  PWCET_EXPECTS(!l2s.empty());
  bool any_dcache = false;
  for (const DcacheAxis& d : dcaches) {
    if (d.enabled) {
      d.geometry.validate();
      PWCET_EXPECTS(d.writeback_penalty >= 0);
    }
    any_dcache |= d.enabled;
  }
  bool any_tlb = false;
  for (const TlbAxis& t : tlbs) {
    if (t.enabled) {
      PWCET_EXPECTS(t.entries > 0 && t.ways > 0);
      PWCET_EXPECTS(t.entries % t.ways == 0);
      t.geometry().validate();
    }
    any_tlb |= t.enabled;
  }
  bool any_l2 = false;
  for (const L2Axis& l : l2s) {
    if (l.enabled) l.geometry.validate();
    any_l2 |= l.enabled;
  }
  for (const AnalysisKind kind : kinds) {
    if (kind == AnalysisKind::kMbpta) {
      PWCET_EXPECTS(mbpta.chips >= 2 * mbpta.block_size);
      for (const std::size_t n : sample_counts)
        PWCET_EXPECTS(n == 0 || n >= 2 * mbpta.block_size);
    }
    if (kind == AnalysisKind::kSimulation)
      PWCET_EXPECTS(simulation_chips > 0);
    // The MBPTA protocol, the fault-injection simulator and the slack
    // oracle model the instruction cache only; combined multi-domain
    // analyses (D-cache, TLB, shared L2) exist only for the SPTA
    // pipeline (analysis/pipeline.hpp).
    if (kind != AnalysisKind::kSpta)
      PWCET_EXPECTS(!any_dcache && !any_tlb && !any_l2);
  }
  if (contains(kinds, AnalysisKind::kSlack))
    // Conservatism is measured against a reliability mechanism's static
    // bound; the unprotected cache has no such bound to compare.
    for (const Mechanism m : mechanisms) PWCET_EXPECTS(m != Mechanism::kNone);
}

std::string CampaignJob::id() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s/%ux%ux%uB/%.1e/%s/%s/%s", task.c_str(),
                geometry.sets, geometry.ways, geometry.line_bytes, pfail,
                mechanism_name(mechanism).c_str(),
                engine_name(engine).c_str(),
                analysis_kind_name(kind).c_str());
  std::string out = buf;
  if (dcache.enabled) {
    char policy[24] = "";
    if (dcache.policy == WritePolicy::kWriteBack)
      std::snprintf(policy, sizeof policy, "-wb%lld",
                    static_cast<long long>(dcache.writeback_penalty));
    std::snprintf(buf, sizeof buf, "/D%ux%ux%uB%s/%s", dcache.geometry.sets,
                  dcache.geometry.ways, dcache.geometry.line_bytes, policy,
                  dcache_mechanism_name(dmech).c_str());
    out += buf;
  }
  if (tlb.enabled) {
    std::snprintf(buf, sizeof buf, "/T%ue%uw%uB", tlb.entries, tlb.ways,
                  tlb.page_bytes);
    out += buf;
  }
  if (l2.enabled) {
    std::snprintf(buf, sizeof buf, "/L%ux%ux%uB", l2.geometry.sets,
                  l2.geometry.ways, l2.geometry.line_bytes);
    out += buf;
  }
  if (samples != 0) {
    std::snprintf(buf, sizeof buf, "/n%zu", samples);
    out += buf;
  }
  return out;
}

std::uint64_t campaign_job_seed(const CampaignSpec& spec,
                                const CampaignJob& job) {
  // Chain every key field through the seed so two jobs differing in any
  // axis value get unrelated streams; fields are hashed by *value* so the
  // seed is invariant under reordering / extending the spec's axes.
  std::uint64_t seed = spec.base_seed;
  seed = Rng::derive_seed(seed, hash_name(job.task));
  seed = Rng::derive_seed(seed, hash_geometry(job.geometry));
  seed = Rng::derive_seed(seed, std::bit_cast<std::uint64_t>(job.pfail));
  seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.mechanism));
  seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.engine));
  seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.kind));
  // The extension axes join the chain only when they are meaningful for
  // the cell — mirroring id()'s suffix rule — so (a) campaigns predating
  // these axes keep their published seeds (their default-valued cells
  // derive through the exact historic chain), and (b) cells differing
  // only in an *ignored* axis value (a dcache mechanism without a data
  // cache, or two pairings resolving to the same mechanism) cannot carry
  // different seeds for identical computations.
  if (job.dcache.enabled) {
    seed = Rng::derive_seed(seed, hash_geometry(job.dcache.geometry));
    seed = Rng::derive_seed(seed,
                            static_cast<std::uint64_t>(job.resolved_dmech()));
    if (job.dcache.policy == WritePolicy::kWriteBack) {
      // Tag words keep the chains of the optional axes from aliasing
      // each other (a TLB geometry must never derive the same seed as an
      // identical L2 geometry).
      seed = Rng::derive_seed(seed, 0x5742);  // "WB"
      seed = Rng::derive_seed(
          seed, static_cast<std::uint64_t>(job.dcache.writeback_penalty));
    }
  }
  if (job.tlb.enabled) {
    seed = Rng::derive_seed(seed, 0x544c42);  // "TLB"
    seed = Rng::derive_seed(seed, hash_geometry(job.tlb.geometry()));
  }
  if (job.l2.enabled) {
    seed = Rng::derive_seed(seed, 0x4c32);  // "L2"
    seed = Rng::derive_seed(seed, hash_geometry(job.l2.geometry));
  }
  if (job.samples != 0)
    seed = Rng::derive_seed(seed, static_cast<std::uint64_t>(job.samples));
  return seed;
}

std::vector<CampaignJob> expand_campaign(const CampaignSpec& spec) {
  spec.validate();
  std::vector<CampaignJob> jobs;
  jobs.reserve(spec.job_count());
  for (std::size_t t = 0; t < spec.tasks.size(); ++t)
    for (std::size_t g = 0; g < spec.geometries.size(); ++g)
      for (std::size_t p = 0; p < spec.pfails.size(); ++p)
        for (std::size_t m = 0; m < spec.mechanisms.size(); ++m)
          for (std::size_t e = 0; e < spec.engines.size(); ++e)
            for (std::size_t k = 0; k < spec.kinds.size(); ++k)
              for (std::size_t d = 0; d < spec.dcaches.size(); ++d)
                for (std::size_t tl = 0; tl < spec.tlbs.size(); ++tl)
                  for (std::size_t l2 = 0; l2 < spec.l2s.size(); ++l2)
                    for (std::size_t dm = 0;
                         dm < spec.dcache_mechanisms.size(); ++dm)
                      for (std::size_t n = 0; n < spec.sample_counts.size();
                           ++n) {
                        CampaignJob job;
                        job.index = jobs.size();
                        job.task_i = t;
                        job.geometry_i = g;
                        job.pfail_i = p;
                        job.mechanism_i = m;
                        job.engine_i = e;
                        job.kind_i = k;
                        job.dcache_i = d;
                        job.tlb_i = tl;
                        job.l2_i = l2;
                        job.dmech_i = dm;
                        job.samples_i = n;
                        job.task = spec.tasks[t];
                        job.geometry = spec.geometries[g];
                        job.pfail = spec.pfails[p];
                        job.mechanism = spec.mechanisms[m];
                        job.engine = spec.engines[e];
                        job.kind = spec.kinds[k];
                        job.dcache = spec.dcaches[d];
                        job.tlb = spec.tlbs[tl];
                        job.l2 = spec.l2s[l2];
                        job.dmech = spec.dcache_mechanisms[dm];
                        job.samples = spec.sample_counts[n];
                        job.seed = campaign_job_seed(spec, job);
                        jobs.push_back(std::move(job));
                      }
  return jobs;
}

StoreKey campaign_group_key(const CampaignJob& job) {
  KeyHasher h("campaign-group-v1");
  h.mix_string(job.task)
      .mix_key(hash_cache_config(job.geometry))
      .mix_u64(static_cast<std::uint64_t>(job.engine))
      .mix_u64(job.dcache.enabled ? 1 : 0)
      .mix_key(job.dcache.enabled ? hash_cache_config(job.dcache.geometry)
                                  : StoreKey{});
  // The optional axes join only when active (tag-word-disambiguated, as
  // in campaign_job_seed) so default-valued cells keep their historic
  // grouping prefix. Only in-run submission order depends on this key.
  if (job.dcache.enabled && job.dcache.policy == WritePolicy::kWriteBack) {
    h.mix_u64(0x5742);
    h.mix_u64(static_cast<std::uint64_t>(job.dcache.writeback_penalty));
  }
  if (job.tlb.enabled) {
    h.mix_u64(0x544c42);
    h.mix_key(hash_cache_config(job.tlb.geometry()));
  }
  if (job.l2.enabled) {
    h.mix_u64(0x4c32);
    h.mix_key(hash_cache_config(job.l2.geometry));
  }
  return h.finish();
}

StoreKey campaign_spec_key(const CampaignSpec& spec) {
  KeyHasher h("campaign-spec-v1");
  h.mix_u64(spec.tasks.size());
  for (const std::string& task : spec.tasks) {
    // Name *and* structural content: the name reaches the report's task
    // column, and the content guards the persistent campaign-report
    // artifact against serving stale results after a workload definition
    // changes (names rarely do; loop bounds etc. might) — consistent with
    // the core/result keys, which chain hash_program too.
    h.mix_string(task);
    h.mix_key(hash_program(workloads::build(task)));
  }
  h.mix_u64(spec.geometries.size());
  for (const CacheConfig& g : spec.geometries) h.mix_key(hash_cache_config(g));
  h.mix_doubles(spec.pfails);
  h.mix_u64(spec.mechanisms.size());
  for (const Mechanism m : spec.mechanisms)
    h.mix_u64(static_cast<std::uint64_t>(m));
  h.mix_u64(spec.engines.size());
  for (const WcetEngine e : spec.engines)
    h.mix_u64(static_cast<std::uint64_t>(e));
  h.mix_u64(spec.kinds.size());
  for (const AnalysisKind k : spec.kinds)
    h.mix_u64(static_cast<std::uint64_t>(k));
  h.mix_u64(spec.dcaches.size());
  for (const DcacheAxis& d : spec.dcaches) {
    h.mix_u64(d.enabled ? 1 : 0);
    h.mix_key(d.enabled ? hash_cache_config(d.geometry) : StoreKey{});
  }
  // The post-release axes are mixed only when they depart from their
  // defaults (and behind tag words, so they cannot alias one another or
  // the trailing fixed fields): every spec written before these axes
  // existed — including the eight shipped paper artifacts, whose keys are
  // pinned by spec_io_test — hashes to its historic value, keeping the
  // persisted campaign-report artifacts warm.
  bool any_wb = false;
  for (const DcacheAxis& d : spec.dcaches)
    any_wb |= d.enabled && (d.policy == WritePolicy::kWriteBack ||
                            d.writeback_penalty != 0);
  if (any_wb) {
    h.mix_u64(0x5742);
    for (const DcacheAxis& d : spec.dcaches) {
      h.mix_u64(static_cast<std::uint64_t>(d.policy));
      h.mix_u64(static_cast<std::uint64_t>(d.writeback_penalty));
    }
  }
  if (!(spec.tlbs.size() == 1 && !spec.tlbs[0].enabled)) {
    h.mix_u64(0x544c42);
    h.mix_u64(spec.tlbs.size());
    for (const TlbAxis& t : spec.tlbs) {
      h.mix_u64(t.enabled ? 1 : 0);
      h.mix_key(t.enabled ? hash_cache_config(t.geometry()) : StoreKey{});
    }
  }
  if (!(spec.l2s.size() == 1 && !spec.l2s[0].enabled)) {
    h.mix_u64(0x4c32);
    h.mix_u64(spec.l2s.size());
    for (const L2Axis& l : spec.l2s) {
      h.mix_u64(l.enabled ? 1 : 0);
      h.mix_key(l.enabled ? hash_cache_config(l.geometry) : StoreKey{});
    }
  }
  h.mix_u64(spec.dcache_mechanisms.size());
  for (const DcacheMechanism m : spec.dcache_mechanisms)
    h.mix_u64(static_cast<std::uint64_t>(m));
  h.mix_u64(spec.sample_counts.size());
  for (const std::size_t n : spec.sample_counts) h.mix_u64(n);
  h.mix_double(spec.target_exceedance);
  h.mix_doubles(spec.ccdf_exceedances);
  h.mix_u64(spec.max_distribution_points);
  h.mix_u64(spec.mbpta.chips);
  h.mix_u64(spec.mbpta.block_size);
  h.mix_u64(spec.mbpta.seed);
  h.mix_u64(spec.simulation_chips);
  h.mix_u64(spec.base_seed);
  return h.finish();
}

std::size_t campaign_job_index(const CampaignSpec& spec, std::size_t task_i,
                               std::size_t geometry_i, std::size_t pfail_i,
                               std::size_t mechanism_i, std::size_t engine_i,
                               std::size_t kind_i, std::size_t dcache_i,
                               std::size_t dmech_i, std::size_t samples_i,
                               std::size_t tlb_i, std::size_t l2_i) {
  PWCET_EXPECTS(task_i < spec.tasks.size());
  PWCET_EXPECTS(geometry_i < spec.geometries.size());
  PWCET_EXPECTS(pfail_i < spec.pfails.size());
  PWCET_EXPECTS(mechanism_i < spec.mechanisms.size());
  PWCET_EXPECTS(engine_i < spec.engines.size());
  PWCET_EXPECTS(kind_i < spec.kinds.size());
  PWCET_EXPECTS(dcache_i < spec.dcaches.size());
  PWCET_EXPECTS(tlb_i < spec.tlbs.size());
  PWCET_EXPECTS(l2_i < spec.l2s.size());
  PWCET_EXPECTS(dmech_i < spec.dcache_mechanisms.size());
  PWCET_EXPECTS(samples_i < spec.sample_counts.size());
  std::size_t index = task_i;
  index = index * spec.geometries.size() + geometry_i;
  index = index * spec.pfails.size() + pfail_i;
  index = index * spec.mechanisms.size() + mechanism_i;
  index = index * spec.engines.size() + engine_i;
  index = index * spec.kinds.size() + kind_i;
  index = index * spec.dcaches.size() + dcache_i;
  index = index * spec.tlbs.size() + tlb_i;
  index = index * spec.l2s.size() + l2_i;
  index = index * spec.dcache_mechanisms.size() + dmech_i;
  index = index * spec.sample_counts.size() + samples_i;
  return index;
}

}  // namespace pwcet
