/// \file
/// Distributed campaign sharding: deterministic partition of a campaign
/// across N independent processes, the versioned per-shard fragment
/// artifact each shard writes into its cache directory, and the merge
/// that reassembles the byte-identical single-process report.
///
/// Partition rule. The unit of distribution is the *analyzer group* — the
/// runner's (task, geometry, engine, dcache, tlb, l2) job grouping — taken
/// in the runner's schedule order (cache-aware group order, pfail-sibling
/// member order; see campaign_group_schedule). Shard i of N owns the
/// contiguous group range [floor(i*G/N), floor((i+1)*G/N)). Distributing
/// whole groups in schedule order preserves everything the single-process
/// runner optimizes: analyzer/FMM-bundle reuse inside a group, re-weighting
/// bundle warmth across pfail siblings, memo locality between adjacent
/// groups — and per-job seeds are key-derived, so results are unaffected
/// by where a job runs. The schedule is a pure function of the expanded
/// spec: shard assignment is spec-key-stable (the same spec content
/// partitions identically on every host, under any file name).
///
/// Fragment artifact. A shard run writes one "campaign-shard" artifact
/// (schema pwcet-shard-fragment-v1) into its cache directory: a meta line
/// naming the spec key, shard index/count, covered report slots and the
/// shard's store stats, followed by the covered scalar report rows and
/// distribution rows in slot order. The artifact travels through
/// ArtifactStore, so its header carries a payload content hash — a
/// corrupted fragment is detected at merge time, not silently merged.
///
/// Merge. merge_campaign_shards scans the fragment sets of N cache
/// directories, demands an exact partition of the campaign's job slots
/// (missing shard, duplicate shard, spec-key mismatch, slot overlap are
/// hard, named ShardMergeErrors), reconstructs every JobResult from the
/// fragment rows (round-tripping formats make the re-render byte-identical
/// to the single-process report), and optionally unions the shards' store
/// directories (store/merge.hpp; same-key-different-bytes is a hard
/// collision error) — finishing by persisting the merged campaign-report /
/// campaign-dist artifacts so future runs warm-load from the union.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/runner.hpp"
#include "store/memo_cache.hpp"

namespace pwcet {

/// Upper bound on --shard N, far beyond any real fleet; guards the
/// partition arithmetic against unparsed garbage.
inline constexpr std::size_t kMaxShardCount = 65536;

/// Parses the CLI spelling "i/N" (1-based i, 1 <= i <= N <= kMaxShardCount)
/// into the 0-based selector; false on any other input.
bool parse_shard_selector(const std::string& text, ShardSelector& shard);

/// The runner's group schedule: jobs grouped by analyzer compatibility
/// (task, geometry, engine, dcache, tlb, l2), groups in cache-aware order
/// (sorted by campaign_group_key, axis order breaking ties), members
/// sibling-sorted (mechanism axes outermost, pfail innermost) so
/// re-weighting bundles stay hot. Extracted from run_campaign so the
/// runner and the shard partitioner can never drift: both call this.
std::vector<std::vector<std::size_t>> campaign_group_schedule(
    const std::vector<CampaignJob>& jobs);

/// Contiguous group range [first, last) of schedule order owned by a
/// shard. Groups of a campaign all hold the same number of jobs (the
/// non-group axes are fully crossed), so the contiguous split is balanced
/// to within one group. Empty when the shard index is beyond the group
/// count (more shards than groups is valid; the surplus shards simply run
/// nothing).
std::pair<std::size_t, std::size_t> shard_group_range(
    std::size_t group_count, const ShardSelector& shard);

/// Expansion-order job indices owned by a shard, sorted ascending — the
/// fragment's covered report slots.
std::vector<std::size_t> shard_job_slots(
    const std::vector<std::vector<std::size_t>>& schedule,
    const ShardSelector& shard);

/// Shard index of every job (indexed by expansion order) under an N-way
/// partition — the `describe --shards N` column.
std::vector<std::size_t> shard_assignment(
    const std::vector<std::vector<std::size_t>>& schedule,
    std::size_t job_count, std::size_t shard_count);

/// Artifact kind under which fragments are stored
/// (`<cache-dir>/campaign-shard/<key>.jsonl`).
inline constexpr const char* kShardFragmentKind = "campaign-shard";

/// Schema tag of the fragment meta line; bump alongside any change to the
/// fragment payload layout.
inline constexpr const char* kShardFragmentSchema =
    "pwcet-shard-fragment-v1";

/// Content key of one fragment: the spec key chained with the shard
/// index/count, so the fragments of different shard counts (or different
/// specs) sharing a cache directory never collide.
StoreKey shard_fragment_key(const StoreKey& spec_key, std::size_t index,
                            std::size_t count);

/// One shard's contribution to a campaign, as carried by the fragment
/// artifact.
struct ShardFragment {
  std::size_t index = 0;  ///< 0-based shard index
  std::size_t count = 1;  ///< total shards of the partition
  std::string spec_key;   ///< campaign_spec_key(spec).hex()
  std::size_t job_count = 0;     ///< total jobs of the whole campaign
  std::size_t curve_points = 0;  ///< spec.ccdf_exceedances.size()
  std::vector<std::size_t> slots;  ///< covered job indices, ascending
  std::string report_rows;  ///< scalar JSONL rows, one per slot, in order
  std::string dist_rows;    ///< dist JSONL rows, curve_points per slot
  StoreStats store_stats;   ///< the shard run's store counters
};

/// Renders the fragment payload (meta line + rows).
std::string render_shard_fragment(const ShardFragment& fragment);

/// Parses a fragment payload; on failure returns false with a diagnostic
/// in `error`. Validates the schema tag, index/count sanity, and that the
/// row counts match the covered slots.
bool parse_shard_fragment(const std::string& payload, ShardFragment& fragment,
                          std::string& error);

/// Outcome of run_campaign_shard: the (sparse) campaign result plus what
/// the fragment recorded.
struct ShardRunOutcome {
  /// Full-size result vector; only the owned `slots` carry results. Render
  /// reports through the owned slots only.
  CampaignResult campaign;
  std::vector<std::size_t> slots;  ///< owned job indices, ascending
  ShardSelector shard;
};

/// Runs one shard of the campaign and writes its fragment artifact into
/// `cache_dir` (which shards may share — fragment keys differ, artifact
/// writes are atomic, and a crash-orphan sweep runs first). The fragment
/// is written through its own ArtifactStore, independent of
/// options.store: `--store off` shard runs still produce a mergeable
/// fragment. Throws on fragment-write failure (an unmergeable shard run
/// is a failed run, not a degraded one).
ShardRunOutcome run_campaign_shard(const CampaignSpec& spec,
                                   const ShardSelector& shard,
                                   const RunnerOptions& options,
                                   const std::string& cache_dir);

/// The shard run as a self-contained CampaignResult whose results vector
/// holds only the owned slots (expansion order preserved) — lets every
/// existing report renderer (engine/report.hpp) emit the shard's partial
/// report unchanged.
CampaignResult shard_view(const ShardRunOutcome& outcome);

/// A merge that cannot produce the single-process-identical report:
/// missing/duplicate/corrupt fragments, spec-key mismatch, shard-count
/// ambiguity, slot overlap, or a store collision. The message names the
/// offending shard/key and file(s).
class ShardMergeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ShardMergeOptions {
  /// Per-shard cache directories to scan for fragments (and to union).
  std::vector<std::string> from_dirs;
  /// Destination store directory; empty = report-only merge (no union).
  std::string into_dir;
  /// Expected shard count; 0 = infer from the fragments (an error if the
  /// directories carry fragments of several partitions).
  std::size_t shard_count = 0;
};

struct ShardMergeOutcome {
  CampaignResult campaign;    ///< reassembled full campaign result
  std::size_t shard_count = 0;  ///< the partition that was merged
  std::size_t artifacts_copied = 0;  ///< store union: newly copied files
  std::size_t artifacts_identical = 0;  ///< union: already present, equal
};

/// Merges the fragments of one campaign back into the single-process
/// result (byte-identical on re-render) and, when `into_dir` is set,
/// unions the shards' artifact stores into it. Throws ShardMergeError with
/// a named diagnostic on any inconsistency.
ShardMergeOutcome merge_campaign_shards(const CampaignSpec& spec,
                                        const ShardMergeOptions& options);

}  // namespace pwcet
