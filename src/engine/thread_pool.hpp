/// \file
/// Fixed-size worker pool for the campaign engine.
///
/// Design constraints, in order of importance:
///   1. *Determinism*: callers collect results by submission index, never by
///      completion order, so a run with N workers is byte-identical to a run
///      with 1 worker (given per-job seeding, see engine/campaign.hpp).
///   2. *Nested fan-out without deadlock*: a task running on a worker may
///      itself submit subtasks and wait for them (the per-set fan-out inside
///      one pWCET analysis rides the same pool as the campaign jobs). Waiting
///      threads therefore *help*: they drain queued tasks instead of
///      blocking, so the pool can never starve itself.
///   3. *Exception propagation*: a throwing task surfaces at the waiter's
///      `get()`, not in a worker thread; `map_indexed` drains all siblings
///      before rethrowing so no task outlives its captured state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pwcet {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  /// Worker count a ThreadPool(threads) would spawn — exposed so callers
  /// that can answer without a pool (the runner's cached campaign path)
  /// still report the same threads_used a computing run would.
  static std::size_t resolve_thread_count(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result (or
  /// rethrows its exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    ready_.notify_one();
    return future;
  }

  /// Runs one queued task on the calling thread; false if the queue was
  /// empty. This is the helping primitive that makes nested waits safe.
  bool run_one();

  /// Evaluates fn(0), ..., fn(count - 1) on the pool and returns the
  /// results *in index order* regardless of completion order. The calling
  /// thread helps execute queued tasks while waiting. If any invocation
  /// throws, the first exception (by index) is rethrown after every
  /// sibling has finished.
  template <typename F>
  auto map_indexed(std::size_t count, F&& fn)
      -> std::vector<std::invoke_result_t<std::decay_t<F>&, std::size_t>> {
    using R = std::invoke_result_t<std::decay_t<F>&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "map_indexed requires a value-returning callable");
    std::vector<std::future<R>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      futures.push_back(submit([&fn, i] { return fn(i); }));

    std::vector<R> results;
    results.reserve(count);
    std::exception_ptr first_error;
    for (auto& future : futures) {
      help_until_ready(future);
      try {
        results.push_back(future.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  /// Helps until `future` is ready (used by callers that submit manually).
  /// With an empty queue the waiter sleeps until some task completes (or a
  /// short timeout as a safety net) rather than busy-polling, so idle
  /// waiters do not steal cycles from the workers still computing.
  template <typename R>
  void help_until_ready(std::future<R>& future) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one()) wait_for_work_or_completion();
    }
  }

 private:
  void worker_loop();
  void wait_for_work_or_completion();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable done_;  ///< signalled after each executed task
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace pwcet
