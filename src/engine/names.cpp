#include "engine/names.hpp"

namespace pwcet {

const std::vector<AxisName<Mechanism>>& mechanism_names() {
  static const std::vector<AxisName<Mechanism>> kNames = {
      {Mechanism::kNone, "none", "unprotected cache (baseline)"},
      {Mechanism::kReliableWay, "RW",
       "reliable way: way 0 of every set is hardened"},
      {Mechanism::kSharedReliableBuffer, "SRB",
       "shared reliable buffer: one hardened line-sized buffer"},
  };
  return kNames;
}

const std::vector<AxisName<WcetEngine>>& engine_names() {
  static const std::vector<AxisName<WcetEngine>> kNames = {
      {WcetEngine::kIlp, "ilp",
       "IPET via the shared simplex (paper-faithful LP bound)"},
      {WcetEngine::kTree, "tree",
       "structural loop-tree engine (exact on structured CFGs)"},
  };
  return kNames;
}

const std::vector<AxisName<AnalysisKind>>& analysis_kind_names() {
  static const std::vector<AxisName<AnalysisKind>> kNames = {
      {AnalysisKind::kSpta, "spta",
       "static probabilistic timing analysis (the paper)"},
      {AnalysisKind::kMbpta, "mbpta",
       "measurement-based EVT estimate over a chip population"},
      {AnalysisKind::kSimulation, "sim",
       "Monte-Carlo fault injection on the heavy path"},
      {AnalysisKind::kSlack, "slack",
       "static-vs-simulated miss-bound conservatism (SRB/RW)"},
  };
  return kNames;
}

const std::vector<AxisName<DcacheMechanism>>& dcache_mechanism_names() {
  static const std::vector<AxisName<DcacheMechanism>> kNames = {
      {DcacheMechanism::kSame, "same", "mirror the instruction-cache mechanism"},
      {DcacheMechanism::kNone, "none", "unprotected data cache"},
      {DcacheMechanism::kReliableWay, "RW", "hardened way 0 on the data cache"},
      {DcacheMechanism::kSharedReliableBuffer, "SRB",
       "one hardened line-sized buffer on the data cache"},
  };
  return kNames;
}

const std::vector<AxisName<WritePolicy>>& write_policy_names() {
  static const std::vector<AxisName<WritePolicy>> kNames = {
      {WritePolicy::kWriteThrough, "write_through",
       "stores bypass the data cache (the default; load-only stream)"},
      {WritePolicy::kWriteBack, "write_back",
       "write-allocate stores; dirty evictions add a write-back penalty"},
  };
  return kNames;
}

const std::vector<DomainListing>& cache_domain_listings() {
  static const std::vector<DomainListing> kListings = {
      {"icache", "instruction cache (primary; the paper's pipeline)"},
      {"dcache", "write-through data cache over statically known loads"},
      {"wb-dcache",
       "write-back data cache: stores allocate, dirty evictions priced"},
      {"tlb", "translation lookaside buffer; page-granular unified stream"},
      {"l2", "shared lookup-through L2 behind the L1 domains"},
  };
  return kListings;
}

namespace {

template <typename Enum>
std::string name_of(const std::vector<AxisName<Enum>>& names, Enum value) {
  for (const AxisName<Enum>& entry : names)
    if (entry.value == value) return entry.name;
  return "?";
}

}  // namespace

// The *_name() helpers declared next to their enums all resolve through
// the registry above; none carries its own copy of the spellings.
std::string mechanism_name(Mechanism m) { return name_of(mechanism_names(), m); }

std::string engine_name(WcetEngine engine) {
  return name_of(engine_names(), engine);
}

std::string analysis_kind_name(AnalysisKind kind) {
  return name_of(analysis_kind_names(), kind);
}

std::string dcache_mechanism_name(DcacheMechanism m) {
  return name_of(dcache_mechanism_names(), m);
}

std::string write_policy_name(WritePolicy policy) {
  return name_of(write_policy_names(), policy);
}

}  // namespace pwcet
