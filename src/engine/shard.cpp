#include "engine/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "engine/report.hpp"
#include "store/artifact_store.hpp"
#include "store/merge.hpp"

namespace pwcet {
namespace {

namespace fs = std::filesystem;

/// Parses one non-negative integer field ("name":123) out of a JSON meta
/// line rendered by this file; false when absent or malformed.
bool json_u64_field(const std::string& line, const char* name,
                    std::uint64_t& out) {
  std::string needle = "\"";
  needle += name;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  unsigned long long value = 0;
  if (std::sscanf(line.c_str() + at + needle.size(), "%llu", &value) != 1)
    return false;
  out = value;
  return true;
}

/// Parses a string field ("name":"...") — values rendered by this file
/// never contain escapes, so scanning to the closing quote is exact.
bool json_string_field(const std::string& line, const char* name,
                       std::string& out) {
  std::string needle = "\"";
  needle += name;
  needle += "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

/// Compresses ascending slot indices into "a-b,c,d-e" range notation —
/// shards own whole schedule-order groups, so runs are common and the
/// meta line stays short even for huge campaigns.
std::string render_slot_ranges(const std::vector<std::size_t>& slots) {
  std::string out;
  std::size_t i = 0;
  while (i < slots.size()) {
    std::size_t j = i;
    while (j + 1 < slots.size() && slots[j + 1] == slots[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(slots[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(slots[j]);
    }
    i = j + 1;
  }
  return out;
}

/// Inverse of render_slot_ranges; false on malformed text or a sequence
/// that is not strictly ascending.
bool parse_slot_ranges(const std::string& text,
                       std::vector<std::size_t>& slots) {
  slots.clear();
  if (text.empty()) return true;  // an empty shard covers no slots
  std::istringstream segments(text);
  std::string segment;
  while (std::getline(segments, segment, ',')) {
    unsigned long long first = 0, last = 0;
    char extra = '\0';
    if (std::sscanf(segment.c_str(), "%llu-%llu%c", &first, &last,
                    &extra) == 2) {
      if (last < first) return false;
    } else if (std::sscanf(segment.c_str(), "%llu%c", &first, &extra) == 1) {
      last = first;
    } else {
      return false;
    }
    if (!slots.empty() && first <= slots.back()) return false;
    for (unsigned long long s = first; s <= last; ++s)
      slots.push_back(static_cast<std::size_t>(s));
  }
  return true;
}

/// Splits a payload's lines after the meta line into the scalar block
/// (`report_lines` lines) and the dist block (the rest).
bool split_fragment_rows(const std::string& payload,
                         std::size_t report_lines, std::string& report_rows,
                         std::string& dist_rows, std::size_t& dist_lines) {
  std::istringstream lines(payload);
  std::string line;
  if (!std::getline(lines, line)) return false;  // meta line
  report_rows.clear();
  dist_rows.clear();
  dist_lines = 0;
  std::size_t row = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (row < report_lines) {
      report_rows += line;
      report_rows += '\n';
    } else {
      dist_rows += line;
      dist_rows += '\n';
      ++dist_lines;
    }
    ++row;
  }
  return row >= report_lines;
}

/// One scanned fragment: its parsed form plus provenance for diagnostics
/// and duplicate detection.
struct ScannedFragment {
  ShardFragment fragment;
  std::string path;     ///< artifact file, for error messages
  std::string payload;  ///< raw bytes, for duplicate comparison
};

}  // namespace

bool parse_shard_selector(const std::string& text, ShardSelector& shard) {
  unsigned long long index = 0, count = 0;
  char extra = '\0';
  if (std::sscanf(text.c_str(), "%llu/%llu%c", &index, &count, &extra) != 2)
    return false;
  if (index < 1 || count < 1 || index > count || count > kMaxShardCount)
    return false;
  shard.index = static_cast<std::size_t>(index - 1);
  shard.count = static_cast<std::size_t>(count);
  return true;
}

std::vector<std::vector<std::size_t>> campaign_group_schedule(
    const std::vector<CampaignJob>& jobs) {
  // Group jobs that can share one analyzer / one program build. std::map
  // keeps the pre-sort order deterministic.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                      std::size_t, std::size_t>,
           std::vector<std::size_t>>
      groups;
  for (const CampaignJob& job : jobs)
    groups[{job.task_i, job.geometry_i, job.engine_i, job.dcache_i,
            job.tlb_i, job.l2_i}]
        .push_back(job.index);

  // Cache-aware order: sort groups by their shared store-key prefix so
  // groups that reuse the same memo entries (duplicate axis values,
  // content-equal geometries) run adjacently and stay hot in the bounded
  // LRU. The axis tuple breaks ties, keeping the order a pure function of
  // the spec. Output is unaffected: result slots are indexed.
  std::vector<std::pair<StoreKey, std::vector<std::size_t>>> ordered;
  ordered.reserve(groups.size());
  for (auto& [key, members] : groups)
    ordered.emplace_back(campaign_group_key(jobs[members.front()]),
                         std::move(members));
  std::stable_sort(
      ordered.begin(), ordered.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  // Within a group, run pfail-siblings back to back: cells differing only
  // in pfail share the whole pfail-independent re-weighting bundle
  // (analysis/pipeline.cpp), so ordering the mechanism axis outermost and
  // pfail innermost lands every sibling on a bundle that is still hot.
  // Expansion order puts pfail outside the mechanism axis, so without this
  // the bundles would be cycled N_pfail times each. The sort key is a pure
  // function of the spec; output is unaffected (slots are indexed).
  std::vector<std::vector<std::size_t>> schedule;
  schedule.reserve(ordered.size());
  for (auto& [key, members] : ordered) {
    std::stable_sort(members.begin(), members.end(),
                     [&jobs](std::size_t a, std::size_t b) {
                       const CampaignJob& x = jobs[a];
                       const CampaignJob& y = jobs[b];
                       return std::tie(x.kind_i, x.mechanism_i, x.dmech_i,
                                       x.samples_i, x.pfail_i) <
                              std::tie(y.kind_i, y.mechanism_i, y.dmech_i,
                                       y.samples_i, y.pfail_i);
                     });
    schedule.push_back(std::move(members));
  }
  return schedule;
}

std::pair<std::size_t, std::size_t> shard_group_range(
    std::size_t group_count, const ShardSelector& shard) {
  // floor(i*G/N) boundaries: contiguous, exhaustive, balanced to within
  // one group. Computed in this exact form everywhere so partition and
  // runner agree.
  const std::size_t first = group_count * shard.index / shard.count;
  const std::size_t last = group_count * (shard.index + 1) / shard.count;
  return {first, last};
}

std::vector<std::size_t> shard_job_slots(
    const std::vector<std::vector<std::size_t>>& schedule,
    const ShardSelector& shard) {
  const auto [first, last] = shard_group_range(schedule.size(), shard);
  std::vector<std::size_t> slots;
  for (std::size_t g = first; g < last; ++g)
    slots.insert(slots.end(), schedule[g].begin(), schedule[g].end());
  std::sort(slots.begin(), slots.end());
  return slots;
}

std::vector<std::size_t> shard_assignment(
    const std::vector<std::vector<std::size_t>>& schedule,
    std::size_t job_count, std::size_t shard_count) {
  std::vector<std::size_t> assignment(job_count, 0);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const auto [first, last] =
        shard_group_range(schedule.size(), {shard, shard_count});
    for (std::size_t g = first; g < last; ++g)
      for (const std::size_t job : schedule[g]) assignment[job] = shard;
  }
  return assignment;
}

StoreKey shard_fragment_key(const StoreKey& spec_key, std::size_t index,
                            std::size_t count) {
  return KeyHasher("campaign-shard-v1")
      .mix_key(spec_key)
      .mix_u64(index)
      .mix_u64(count)
      .finish();
}

std::string render_shard_fragment(const ShardFragment& fragment) {
  std::string meta = "{\"schema\":\"";
  meta += kShardFragmentSchema;
  meta += "\",\"spec_key\":\"";
  meta += fragment.spec_key;
  meta += "\",\"shard\":";
  meta += std::to_string(fragment.index + 1);  // 1-based, the CLI spelling
  meta += ",\"of\":";
  meta += std::to_string(fragment.count);
  meta += ",\"jobs\":";
  meta += std::to_string(fragment.job_count);
  meta += ",\"points\":";
  meta += std::to_string(fragment.curve_points);
  meta += ",\"slots\":\"";
  meta += render_slot_ranges(fragment.slots);
  meta += "\",\"memo_hits\":";
  meta += std::to_string(fragment.store_stats.hits);
  meta += ",\"memo_misses\":";
  meta += std::to_string(fragment.store_stats.misses);
  meta += ",\"disk_hits\":";
  meta += std::to_string(fragment.store_stats.disk_hits);
  meta += ",\"disk_misses\":";
  meta += std::to_string(fragment.store_stats.disk_misses);
  meta += ",\"disk_writes\":";
  meta += std::to_string(fragment.store_stats.disk_writes);
  meta += "}\n";
  return meta + fragment.report_rows + fragment.dist_rows;
}

bool parse_shard_fragment(const std::string& payload, ShardFragment& fragment,
                          std::string& error) {
  const std::size_t meta_end = payload.find('\n');
  const std::string meta = payload.substr(
      0, meta_end == std::string::npos ? payload.size() : meta_end);
  const std::string expected_prefix =
      std::string("{\"schema\":\"") + kShardFragmentSchema + "\",";
  if (meta.rfind(expected_prefix, 0) != 0) {
    error = "unrecognized fragment schema (want " +
            std::string(kShardFragmentSchema) + ")";
    return false;
  }
  std::uint64_t shard_1based = 0, count = 0, jobs = 0, points = 0;
  std::string slots_text;
  if (!json_string_field(meta, "spec_key", fragment.spec_key) ||
      fragment.spec_key.size() != 32 ||
      !json_u64_field(meta, "shard", shard_1based) ||
      !json_u64_field(meta, "of", count) ||
      !json_u64_field(meta, "jobs", jobs) ||
      !json_u64_field(meta, "points", points) ||
      !json_string_field(meta, "slots", slots_text)) {
    error = "malformed fragment meta line";
    return false;
  }
  if (shard_1based < 1 || count < 1 || shard_1based > count ||
      count > kMaxShardCount) {
    error = "fragment shard index " + std::to_string(shard_1based) + "/" +
            std::to_string(count) + " out of range";
    return false;
  }
  fragment.index = static_cast<std::size_t>(shard_1based - 1);
  fragment.count = static_cast<std::size_t>(count);
  fragment.job_count = static_cast<std::size_t>(jobs);
  fragment.curve_points = static_cast<std::size_t>(points);
  if (!parse_slot_ranges(slots_text, fragment.slots) ||
      (!fragment.slots.empty() &&
       fragment.slots.back() >= fragment.job_count)) {
    error = "malformed fragment slot list '" + slots_text + "'";
    return false;
  }
  // Store counters are informational; missing ones read as zero.
  std::uint64_t value = 0;
  fragment.store_stats = StoreStats{};
  if (json_u64_field(meta, "memo_hits", value)) fragment.store_stats.hits = value;
  if (json_u64_field(meta, "memo_misses", value))
    fragment.store_stats.misses = value;
  if (json_u64_field(meta, "disk_hits", value))
    fragment.store_stats.disk_hits = value;
  if (json_u64_field(meta, "disk_misses", value))
    fragment.store_stats.disk_misses = value;
  if (json_u64_field(meta, "disk_writes", value))
    fragment.store_stats.disk_writes = value;

  std::size_t dist_lines = 0;
  if (!split_fragment_rows(payload, fragment.slots.size(),
                           fragment.report_rows, fragment.dist_rows,
                           dist_lines)) {
    error = "fragment carries fewer report rows than covered slots";
    return false;
  }
  if (dist_lines != fragment.slots.size() * fragment.curve_points) {
    error = "fragment distribution rows (" + std::to_string(dist_lines) +
            ") do not match slots x points (" +
            std::to_string(fragment.slots.size() * fragment.curve_points) +
            ")";
    return false;
  }
  return true;
}

ShardRunOutcome run_campaign_shard(const CampaignSpec& spec,
                                   const ShardSelector& shard,
                                   const RunnerOptions& options,
                                   const std::string& cache_dir) {
  const std::vector<CampaignJob> jobs = expand_campaign(spec);
  const std::vector<std::vector<std::size_t>> schedule =
      campaign_group_schedule(jobs);

  ShardRunOutcome outcome;
  outcome.shard = shard;
  outcome.slots = shard_job_slots(schedule, shard);

  RunnerOptions run_options = options;
  run_options.shard = shard;
  outcome.campaign = run_campaign(spec, run_options);

  const StoreKey spec_key = campaign_spec_key(spec);
  ShardFragment fragment;
  fragment.index = shard.index;
  fragment.count = shard.count;
  fragment.spec_key = spec_key.hex();
  fragment.job_count = jobs.size();
  fragment.curve_points = spec.ccdf_exceedances.size();
  fragment.slots = outcome.slots;
  fragment.store_stats = outcome.campaign.store_stats;
  for (const std::size_t slot : outcome.slots) {
    fragment.report_rows +=
        report_jsonl_row(outcome.campaign, outcome.campaign.results[slot]);
    fragment.dist_rows += report_dist_jsonl_rows(
        outcome.campaign, outcome.campaign.results[slot]);
  }

  // The fragment store is independent of options.store: a --store off
  // shard run still writes a mergeable fragment. Sweep crash debris first
  // — shards share cache directories, and a dead writer's temp files
  // should not accumulate across campaigns.
  const ArtifactStore store({cache_dir});
  store.sweep_orphans();
  if (!store.store_text(kShardFragmentKind,
                        shard_fragment_key(spec_key, shard.index,
                                           shard.count),
                        render_shard_fragment(fragment)))
    throw std::runtime_error("cannot write shard fragment artifact into " +
                             cache_dir);
  return outcome;
}

CampaignResult shard_view(const ShardRunOutcome& outcome) {
  CampaignResult view;
  view.spec = outcome.campaign.spec;
  view.threads_used = outcome.campaign.threads_used;
  view.wall_seconds = outcome.campaign.wall_seconds;
  view.store_stats = outcome.campaign.store_stats;
  view.results.reserve(outcome.slots.size());
  for (const std::size_t slot : outcome.slots)
    view.results.push_back(outcome.campaign.results[slot]);
  return view;
}

ShardMergeOutcome merge_campaign_shards(const CampaignSpec& spec,
                                        const ShardMergeOptions& options) {
  if (options.from_dirs.empty())
    throw ShardMergeError("no shard directories to merge");
  const std::vector<CampaignJob> jobs = expand_campaign(spec);
  const StoreKey spec_key = campaign_spec_key(spec);
  const std::string spec_key_hex = spec_key.hex();
  const std::size_t points = spec.ccdf_exceedances.size();

  // Scan every directory's fragment artifacts. Any file in the fragment
  // directory that does not validate is a hard error: merging around a
  // corrupted fragment would silently drop a shard.
  std::vector<ScannedFragment> scanned;
  for (const std::string& dir : options.from_dirs) {
    const fs::path fragment_dir = fs::path(dir) / kShardFragmentKind;
    std::error_code ec;
    if (!fs::exists(fragment_dir, ec)) continue;
    fs::directory_iterator files(fragment_dir, ec);
    if (ec)
      throw ShardMergeError("cannot read " + fragment_dir.string() + ": " +
                            ec.message());
    const ArtifactStore store({dir});
    for (const fs::directory_entry& file : files) {
      if (!file.is_regular_file(ec)) continue;
      const std::string name = file.path().filename().string();
      if (file.path().extension() != ".jsonl" ||
          name.find(".jsonl.tmp") != std::string::npos)
        continue;  // writer-crash debris; swept elsewhere
      StoreKey key;
      if (!store_key_from_hex(file.path().stem().string(), key))
        throw ShardMergeError("foreign file in fragment directory: " +
                              file.path().string());
      const std::optional<std::string> payload =
          store.load_text(kShardFragmentKind, key);
      if (!payload)
        throw ShardMergeError("corrupted shard fragment artifact: " +
                              file.path().string() +
                              " (header or payload-hash validation failed)");
      ScannedFragment entry;
      entry.path = file.path().string();
      entry.payload = *payload;
      std::string error;
      if (!parse_shard_fragment(entry.payload, entry.fragment, error))
        throw ShardMergeError("invalid shard fragment " + entry.path + ": " +
                              error);
      scanned.push_back(std::move(entry));
    }
  }

  // Keep this spec's fragments; a directory holding only foreign-spec
  // fragments is named (the likeliest cause is merging the wrong spec
  // file against the right directories, or vice versa).
  std::vector<ScannedFragment> matching;
  for (ScannedFragment& entry : scanned)
    if (entry.fragment.spec_key == spec_key_hex)
      matching.push_back(std::move(entry));
  if (matching.empty()) {
    if (!scanned.empty())
      throw ShardMergeError(
          "spec-key mismatch: fragment " + scanned.front().path +
          " carries spec key " + scanned.front().fragment.spec_key +
          ", want " + spec_key_hex + " (no fragments of this spec found)");
    throw ShardMergeError("no shard fragments found under the given "
                          "directories (looked for " +
                          std::string(kShardFragmentKind) + "/*.jsonl)");
  }

  // Resolve the partition's shard count, honoring --shards when given.
  std::size_t shard_count = options.shard_count;
  if (shard_count == 0) {
    for (const ScannedFragment& entry : matching) {
      if (shard_count == 0) {
        shard_count = entry.fragment.count;
      } else if (entry.fragment.count != shard_count) {
        throw ShardMergeError(
            "fragments disagree on the shard count (" +
            std::to_string(shard_count) + " vs " +
            std::to_string(entry.fragment.count) +
            "); pass --shards N to select one partition");
      }
    }
  }

  // Collate by shard index: duplicates must be byte-identical (reruns of
  // the same shard into the same or different directories), and every
  // index must be present.
  std::vector<const ScannedFragment*> by_index(shard_count, nullptr);
  for (const ScannedFragment& entry : matching) {
    if (entry.fragment.count != shard_count) continue;  // other partition
    const std::size_t index = entry.fragment.index;
    if (by_index[index] != nullptr) {
      if (by_index[index]->payload != entry.payload)
        throw ShardMergeError(
            "duplicate shard " + std::to_string(index + 1) + "/" +
            std::to_string(shard_count) + ": " + by_index[index]->path +
            " and " + entry.path + " differ");
      continue;  // identical rerun; keep the first
    }
    by_index[index] = &entry;
  }
  for (std::size_t i = 0; i < shard_count; ++i)
    if (by_index[i] == nullptr)
      throw ShardMergeError("missing shard " + std::to_string(i + 1) + "/" +
                            std::to_string(shard_count) + " for spec key " +
                            spec_key_hex);

  // The fragments must exactly partition the campaign's job slots.
  ShardMergeOutcome outcome;
  outcome.shard_count = shard_count;
  outcome.campaign.spec = spec;
  outcome.campaign.results.resize(jobs.size());
  std::vector<bool> covered(jobs.size(), false);
  for (const ScannedFragment* entry : by_index) {
    const ShardFragment& fragment = entry->fragment;
    if (fragment.job_count != jobs.size() || fragment.curve_points != points)
      throw ShardMergeError(
          "fragment " + entry->path + " does not match the spec (" +
          std::to_string(fragment.job_count) + " jobs / " +
          std::to_string(fragment.curve_points) + " points, spec has " +
          std::to_string(jobs.size()) + " / " + std::to_string(points) +
          ")");
    for (const std::size_t slot : fragment.slots) {
      if (covered[slot])
        throw ShardMergeError(
            "shard fragments do not partition the campaign: job slot " +
            std::to_string(slot) + " is covered twice (second time by " +
            entry->path + ")");
      covered[slot] = true;
    }
    if (!parse_campaign_report_rows(fragment.report_rows, jobs,
                                    fragment.slots,
                                    outcome.campaign.results))
      throw ShardMergeError("fragment " + entry->path +
                            ": malformed report rows");
    if (points > 0 &&
        !parse_campaign_dist_rows(fragment.dist_rows, points, fragment.slots,
                                  outcome.campaign.results))
      throw ShardMergeError("fragment " + entry->path +
                            ": malformed distribution rows");
    outcome.campaign.store_stats.hits += fragment.store_stats.hits;
    outcome.campaign.store_stats.misses += fragment.store_stats.misses;
    outcome.campaign.store_stats.disk_hits += fragment.store_stats.disk_hits;
    outcome.campaign.store_stats.disk_misses +=
        fragment.store_stats.disk_misses;
    outcome.campaign.store_stats.disk_writes +=
        fragment.store_stats.disk_writes;
  }
  for (std::size_t slot = 0; slot < covered.size(); ++slot)
    if (!covered[slot])
      throw ShardMergeError(
          "shard fragments do not partition the campaign: job slot " +
          std::to_string(slot) + " is covered by no shard");

  // Store union, then publish the merged whole-campaign artifacts so a
  // future `pwcet run` against the union answers from the warm path.
  if (!options.into_dir.empty()) {
    try {
      const StoreMergeStats stats =
          merge_artifact_dirs(options.from_dirs, options.into_dir);
      outcome.artifacts_copied = stats.copied;
      outcome.artifacts_identical = stats.identical;
    } catch (const StoreMergeError& e) {
      throw ShardMergeError(e.what());
    }
    const ArtifactStore store({options.into_dir});
    store.store_text("campaign-report", spec_key,
                     report_jsonl(outcome.campaign));
    if (points > 0)
      store.store_text("campaign-dist", spec_key,
                       report_dist_jsonl(outcome.campaign));
  }
  return outcome;
}

}  // namespace pwcet
