/// \file
/// Structured result emission for campaign runs.
///
/// One row per job, in expansion order, rendered as CSV (via
/// support/table's TextTable, so the same rows also print as an aligned
/// text table) or as JSON lines (one object per row, BENCH_*.json-style).
/// Rendering is bitwise deterministic: numbers are formatted with fixed
/// printf conversions ("%.17g" round-trips doubles exactly), and nothing
/// timing- or machine-dependent enters a row — which is what lets the
/// tests assert that an N-thread campaign reproduces a 1-thread campaign
/// byte for byte.
#pragma once

#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "support/table.hpp"

namespace pwcet {

/// Column names of the tabular report, in order.
std::vector<std::string> report_columns();

/// One formatted row (same order as report_columns()).
std::vector<std::string> report_row(const CampaignResult& campaign,
                                    const JobResult& result);

/// The whole campaign as an aligned text table.
TextTable report_table(const CampaignResult& campaign);

/// The whole campaign as CSV (header + one line per job).
std::string report_csv(const CampaignResult& campaign);

/// The whole campaign as JSON lines (one object per job, no header).
std::string report_jsonl(const CampaignResult& campaign);

/// Writes `basename`.csv and `basename`.jsonl; returns false on I/O error.
bool write_report_files(const CampaignResult& campaign,
                        const std::string& basename);

}  // namespace pwcet
