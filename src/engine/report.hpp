/// \file
/// Structured result emission for campaign runs.
///
/// One row per job, in expansion order, rendered as CSV (via
/// support/table's TextTable, so the same rows also print as an aligned
/// text table) or as JSON lines (one object per row, BENCH_*.json-style).
/// Rendering is bitwise deterministic: numbers are formatted with fixed
/// printf conversions ("%.17g" round-trips doubles exactly), and nothing
/// timing- or machine-dependent enters a row — which is what lets the
/// tests assert that an N-thread campaign reproduces a 1-thread campaign
/// byte for byte.
///
/// Campaigns with a distribution sink (spec.ccdf_exceedances non-empty)
/// additionally render a *dist* report: one row per (job, exceedance
/// point), job-major — the full pWCET curve (CCDF) of every cell, e.g.
/// the paper's Fig. 3 series. write_report_files emits it as
/// `basename`.dist.{csv,jsonl} next to the scalar report.
#pragma once

#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "support/table.hpp"

namespace pwcet {

/// Column names of the tabular report, in order.
std::vector<std::string> report_columns();

/// One formatted row (same order as report_columns()).
std::vector<std::string> report_row(const CampaignResult& campaign,
                                    const JobResult& result);

/// The whole campaign as an aligned text table.
TextTable report_table(const CampaignResult& campaign);

/// The whole campaign as CSV (header + one line per job).
std::string report_csv(const CampaignResult& campaign);

/// The whole campaign as JSON lines (one object per job, no header).
std::string report_jsonl(const CampaignResult& campaign);

/// One job's scalar report row as a single JSONL object line (trailing
/// newline included) — the unit that campaign-shard fragments carry
/// (engine/shard.hpp).
std::string report_jsonl_row(const CampaignResult& campaign,
                             const JobResult& result);

/// One job's distribution-sink rows: spec.ccdf_exceedances.size() JSONL
/// lines in point order; empty for scalar-only campaigns.
std::string report_dist_jsonl_rows(const CampaignResult& campaign,
                                   const JobResult& result);

/// Rebuilds per-job numeric results from rendered scalar JSONL rows: one
/// payload line per entry of `slots` (expansion-order job indices), in
/// order. The job metadata columns need no parsing — expand_campaign
/// reproduces them exactly — and the numeric tail was printed with
/// round-tripping conversions ("%.17g" / decimal integers), so the
/// reconstructed results render byte-identically to the originals. Used by
/// the runner's whole-campaign warm load (slots = all jobs) and by the
/// shard merge (slots = a fragment's covered rows). Returns false on any
/// mismatch (row count, missing fields, slot out of range), in which case
/// the caller recomputes or rejects the payload.
bool parse_campaign_report_rows(const std::string& payload,
                                const std::vector<CampaignJob>& jobs,
                                const std::vector<std::size_t>& slots,
                                std::vector<JobResult>& results);

/// Same for rendered distribution-sink rows (`points` lines per slot,
/// job-major): refills results[slot].curve.
bool parse_campaign_dist_rows(const std::string& payload, std::size_t points,
                              const std::vector<std::size_t>& slots,
                              std::vector<JobResult>& results);

/// Column names of the distribution-sink report, in order.
std::vector<std::string> report_dist_columns();

/// The distribution sink as an aligned text table / CSV / JSON lines:
/// one row per (job, spec.ccdf_exceedances entry), job-major. Empty
/// (header-only for CSV) when the spec requests no distribution output.
TextTable report_dist_table(const CampaignResult& campaign);
std::string report_dist_csv(const CampaignResult& campaign);
std::string report_dist_jsonl(const CampaignResult& campaign);

/// Writes `basename`.csv and `basename`.jsonl — plus, when the campaign
/// carries a distribution sink, `basename`.dist.csv and
/// `basename`.dist.jsonl; returns false on I/O error.
bool write_report_files(const CampaignResult& campaign,
                        const std::string& basename);

}  // namespace pwcet
