/// \file
/// Structured result emission for campaign runs.
///
/// One row per job, in expansion order, rendered as CSV (via
/// support/table's TextTable, so the same rows also print as an aligned
/// text table) or as JSON lines (one object per row, BENCH_*.json-style).
/// Rendering is bitwise deterministic: numbers are formatted with fixed
/// printf conversions ("%.17g" round-trips doubles exactly), and nothing
/// timing- or machine-dependent enters a row — which is what lets the
/// tests assert that an N-thread campaign reproduces a 1-thread campaign
/// byte for byte.
///
/// Campaigns with a distribution sink (spec.ccdf_exceedances non-empty)
/// additionally render a *dist* report: one row per (job, exceedance
/// point), job-major — the full pWCET curve (CCDF) of every cell, e.g.
/// the paper's Fig. 3 series. write_report_files emits it as
/// `basename`.dist.{csv,jsonl} next to the scalar report.
#pragma once

#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "support/table.hpp"

namespace pwcet {

/// Column names of the tabular report, in order.
std::vector<std::string> report_columns();

/// One formatted row (same order as report_columns()).
std::vector<std::string> report_row(const CampaignResult& campaign,
                                    const JobResult& result);

/// The whole campaign as an aligned text table.
TextTable report_table(const CampaignResult& campaign);

/// The whole campaign as CSV (header + one line per job).
std::string report_csv(const CampaignResult& campaign);

/// The whole campaign as JSON lines (one object per job, no header).
std::string report_jsonl(const CampaignResult& campaign);

/// Column names of the distribution-sink report, in order.
std::vector<std::string> report_dist_columns();

/// The distribution sink as an aligned text table / CSV / JSON lines:
/// one row per (job, spec.ccdf_exceedances entry), job-major. Empty
/// (header-only for CSV) when the spec requests no distribution output.
TextTable report_dist_table(const CampaignResult& campaign);
std::string report_dist_csv(const CampaignResult& campaign);
std::string report_dist_jsonl(const CampaignResult& campaign);

/// Writes `basename`.csv and `basename`.jsonl — plus, when the campaign
/// carries a distribution sink, `basename`.dist.csv and
/// `basename`.dist.jsonl; returns false on I/O error.
bool write_report_files(const CampaignResult& campaign,
                        const std::string& basename);

}  // namespace pwcet
