#include "workloads/malardalen.hpp"

#include <functional>

#include "support/contracts.hpp"

namespace pwcet::workloads {
namespace {

/// Code sizes are written in cache lines (4 instructions each) so the
/// relation to the 64-line / 16-set paper cache is explicit at a glance.
constexpr std::uint32_t kInstrPerLine = 4;

std::uint32_t instrs(std::uint32_t lines) { return lines * kInstrPerLine; }

/// Wraps a benchmark body in start-up and tear-down code. The original
/// binaries carry crt0, argument setup, and the printf/IO epilogues of the
/// Mälardalen mains (gcc 4.1, default linker layout, §IV-A); this one-shot
/// code executes once, misses once per line, and contributes to the
/// fault-free WCET exactly like the original runtimes do. Leaving it out
/// would overstate the relative weight of the fault-induced penalties.
StmtId with_runtime(ProgramBuilder& b, std::uint32_t prologue_lines,
                    std::uint32_t epilogue_lines, StmtId body) {
  return b.seq({b.code(instrs(prologue_lines)), body,
                b.code(instrs(epilogue_lines))});
}

// ---------------------------------------------------------------------------
// Category 1 — the cache captures spatial locality only (loop bodies much
// larger than the 64-line cache, or essentially straight-line code). Both
// mechanisms fully mask the impact of faults (paper §IV-B).
// ---------------------------------------------------------------------------

/// ADPCM encoder/decoder: one large main loop calling encode, decode and a
/// shared filter routine; body far exceeds the cache.
Program build_adpcm() {
  ProgramBuilder b("adpcm");
  const FunctionId filter =
      b.add_function("filter", b.code(instrs(22)));
  const StmtId encode = b.seq({
      b.code(instrs(18)),
      b.if_else(instrs(1), b.code(instrs(8)), b.code(instrs(10))),
      b.call(filter),
      b.code(instrs(12)),
  });
  const StmtId decode = b.seq({
      b.code(instrs(15)),
      b.call(filter),
      b.if_else(instrs(1), b.code(instrs(6)), b.code(instrs(7))),
      b.code(instrs(10)),
  });
  const StmtId main_body = b.seq({
      b.code(instrs(24)),  // input conditioning
      b.loop(instrs(1), 60, b.seq({encode, decode, b.code(instrs(9))})),
      b.code(instrs(8)),  // epilogue
  });
  b.add_function("main", with_runtime(b, 12, 8, main_body));
  return b.build(1);
}

/// LZW-style compress: one big loop over the buffer, hash + emit paths.
Program build_compress() {
  ProgramBuilder b("compress");
  const StmtId body = b.seq({
      b.code(instrs(26)),  // hash probe
      b.if_else(instrs(1), b.code(instrs(22)), b.code(instrs(28))),
      b.code(instrs(18)),  // code emission
  });
  b.add_function("main", with_runtime(b, 12, 8, b.seq({
                             b.code(instrs(16)),
                             b.loop(instrs(1), 40, body),
                             b.code(instrs(6)),
                         })));
  return b.build(0);
}

/// cover: loop over a large switch; every arm is cold code, so only spatial
/// locality exists on any single path.
Program build_cover() {
  ProgramBuilder b("cover");
  // Depth-3 if/else chain approximating an 8-arm switch of 12 lines each.
  auto arm = [&](std::uint32_t lines) { return b.code(instrs(lines)); };
  const StmtId sw = b.if_else(
      instrs(1),
      b.if_else(instrs(1), b.if_else(instrs(1), arm(12), arm(13)),
                b.if_else(instrs(1), arm(11), arm(12))),
      b.if_else(instrs(1), b.if_else(instrs(1), arm(13), arm(12)),
                b.if_else(instrs(1), arm(12), arm(14))));
  b.add_function("main", with_runtime(b, 12, 8, b.seq({
                             b.code(instrs(6)),
                             b.loop(instrs(1), 120, b.seq({sw, arm(2)})),
                             b.code(instrs(3)),
                         })));
  return b.build(0);
}

/// nsichneu: Petri-net simulation — hundreds of sequential if/else pairs,
/// two outer iterations; the body dwarfs the cache.
Program build_nsichneu() {
  ProgramBuilder b("nsichneu");
  std::vector<StmtId> pairs;
  pairs.reserve(30);
  for (int i = 0; i < 30; ++i) {
    pairs.push_back(b.if_else(instrs(1), b.code(instrs(6)),
                              b.code(instrs(6))));
  }
  b.add_function("main", with_runtime(b, 12, 8, b.seq({
                             b.code(instrs(4)),
                             b.loop(instrs(1), 2, b.seq(std::move(pairs))),
                             b.code(instrs(2)),
                         })));
  return b.build(0);
}

// ---------------------------------------------------------------------------
// Category 2 — small kernels whose loop working set fits one line per set:
// all temporal reuse sits in the MRU position, which the RW preserves under
// any fault pattern while the SRB analysis cannot (paper §IV-B).
// ---------------------------------------------------------------------------

/// fibcall: iterative Fibonacci — a tiny loop.
Program build_fibcall() {
  ProgramBuilder b("fibcall");
  b.add_function("main", with_runtime(b, 44, 18, b.seq({
                             b.code(instrs(3)),
                             b.loop(instrs(1), 30, b.code(instrs(5))),
                             b.code(instrs(1)),
                         })));
  return b.build(0);
}

/// bs: binary search over 15 elements.
Program build_bs() {
  ProgramBuilder b("bs");
  const StmtId body = b.seq({
      b.code(instrs(2)),
      b.if_else(instrs(1), b.code(instrs(3)), b.code(instrs(3))),
  });
  b.add_function("main", with_runtime(b, 44, 18, b.seq({
                             b.code(instrs(3)),
                             b.loop(instrs(1), 4, body),
                             b.code(instrs(1)),
                         })));
  return b.build(0);
}

/// prime: trial-division primality test.
Program build_prime() {
  ProgramBuilder b("prime");
  const StmtId body = b.seq({
      b.code(instrs(2)),
      b.if_then(instrs(1), b.code(instrs(2))),
  });
  b.add_function("main", with_runtime(b, 44, 18, b.seq({
                             b.code(instrs(4)),
                             b.loop(instrs(1), 50, body),
                             b.code(instrs(2)),
                         })));
  return b.build(0);
}

/// expint: exponential integral — nested small loops.
Program build_expint() {
  ProgramBuilder b("expint");
  const StmtId inner = b.loop(instrs(1), 9, b.code(instrs(24)));
  b.add_function("main", with_runtime(b, 44, 18, b.seq({
                     b.code(instrs(5)),
                     b.loop(instrs(1), 12, b.seq({b.code(instrs(19)), inner,
                                                  b.code(instrs(14))})),
                     b.code(instrs(2)),
                 })));
  return b.build(0);
}

/// janne_complex: the two interlocked small loops of the WCET tool
/// challenge.
Program build_janne_complex() {
  ProgramBuilder b("janne_complex");
  const StmtId inner =
      b.loop(instrs(1), 12,
             b.seq({b.code(instrs(9)),
                    b.if_else(instrs(1), b.code(instrs(7)),
                              b.code(instrs(8)))}));
  b.add_function("main", with_runtime(b, 44, 18, b.seq({
                     b.code(instrs(2)),
                     b.loop(instrs(1), 10, b.seq({b.code(instrs(12)), inner,
                                                  b.code(instrs(8))})),
                 })));
  return b.build(0);
}

/// insertsort: two tight nested loops over 10 elements.
Program build_insertsort() {
  ProgramBuilder b("insertsort");
  const StmtId inner = b.loop(instrs(1), 9, b.code(instrs(26)));
  b.add_function("main", with_runtime(b, 44, 18, b.seq({
                     b.code(instrs(3)),
                     b.loop(instrs(1), 9, b.seq({b.code(instrs(19)), inner,
                                                 b.code(instrs(14))})),
                 })));
  return b.build(0);
}

// ---------------------------------------------------------------------------
// Category 3 — medium kernels: the loop working set spans several ways per
// set, so most temporal reuse lives *beyond* the MRU position and neither
// mechanism can protect it; both gains are similar (paper §IV-B).
// ---------------------------------------------------------------------------

/// crc: bit loop over the message with a table-update helper.
Program build_crc() {
  ProgramBuilder b("crc");
  const FunctionId update = b.add_function("icrc1", b.code(instrs(12)));
  const StmtId body = b.seq({
      b.code(instrs(9)),
      b.call(update),
      b.if_else(instrs(1), b.code(instrs(8)), b.code(instrs(6))),
      b.code(instrs(7)),
  });
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                             b.code(instrs(6)),
                             b.loop(instrs(1), 64, body),
                             b.code(instrs(2)),
                         })));
  return b.build(1);
}

/// fir: finite impulse response filter — one medium loop nest.
Program build_fir() {
  ProgramBuilder b("fir");
  const StmtId inner = b.loop(instrs(1), 12, b.code(instrs(42)));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                     b.code(instrs(5)),
                     b.loop(instrs(1), 20,
                            b.seq({b.code(instrs(10)), inner,
                                   b.code(instrs(8))})),
                 })));
  return b.build(0);
}

/// edn: sequence of signal-processing loops of medium size.
Program build_edn() {
  ProgramBuilder b("edn");
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
          b.code(instrs(4)),
          b.loop(instrs(1), 25, b.code(instrs(52))),
          b.loop(instrs(1), 20, b.code(instrs(46))),
          b.loop(instrs(1), 30,
                 b.seq({b.code(instrs(22)),
                        b.if_else(instrs(1), b.code(instrs(15)),
                                  b.code(instrs(14)))})),
          b.code(instrs(3)),
      })));
  return b.build(0);
}

/// fdct: forward DCT — two passes of medium straight-line arithmetic.
Program build_fdct() {
  ProgramBuilder b("fdct");
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                             b.code(instrs(4)),
                             b.loop(instrs(1), 8, b.code(instrs(44))),
                             b.loop(instrs(1), 8, b.code(instrs(41))),
                         })));
  return b.build(0);
}

/// jfdctint: integer DCT — three medium passes.
Program build_jfdctint() {
  ProgramBuilder b("jfdctint");
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                             b.code(instrs(3)),
                             b.loop(instrs(1), 8, b.code(instrs(38))),
                             b.loop(instrs(1), 8, b.code(instrs(36))),
                             b.loop(instrs(1), 16, b.code(instrs(12))),
                         })));
  return b.build(0);
}

/// ndes: DES-like rounds calling two medium helpers per iteration.
Program build_ndes() {
  ProgramBuilder b("ndes");
  const FunctionId sbox = b.add_function("getbit", b.code(instrs(8)));
  const FunctionId perm = b.add_function("ks", b.code(instrs(10)));
  const StmtId round = b.seq({
      b.code(instrs(6)),
      b.call(sbox),
      b.code(instrs(4)),
      b.call(perm),
      b.if_else(instrs(1), b.code(instrs(4)), b.code(instrs(3))),
  });
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                             b.code(instrs(8)),
                             b.loop(instrs(1), 16, round),
                             b.code(instrs(4)),
                         })));
  return b.build(2);
}

/// bsort100: bubble sort — tight nested loops with a swap branch of
/// moderate footprint.
Program build_bsort100() {
  ProgramBuilder b("bsort100");
  const StmtId inner =
      b.loop(instrs(1), 16,
             b.seq({b.code(instrs(12)),
                    b.if_then(instrs(1), b.code(instrs(18)))}));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                     b.code(instrs(3)),
                     b.loop(instrs(1), 16, b.seq({b.code(instrs(14)), inner,
                                                  b.code(instrs(7))})),
                 })));
  return b.build(0);
}

/// cnt: 2-D array count/sum with a medium test-and-accumulate body.
Program build_cnt() {
  ProgramBuilder b("cnt");
  const StmtId inner =
      b.loop(instrs(1), 10,
             b.seq({b.code(instrs(12)),
                    b.if_else(instrs(1), b.code(instrs(13)),
                              b.code(instrs(12)))}));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                     b.code(instrs(4)),
                     b.loop(instrs(1), 10, b.seq({b.code(instrs(11)), inner})),
                     b.code(instrs(2)),
                 })));
  return b.build(0);
}

// ---------------------------------------------------------------------------
// Category 4 — mixed: both MRU-position temporal locality (small inner
// kernels) and deeper temporal locality (medium loops); RW, SRB and the
// fault-free WCET all differ (paper §IV-B, e.g. matmult and fft).
// ---------------------------------------------------------------------------

/// matmult: triple loop nest; tiny innermost kernel under medium overhead.
Program build_matmult() {
  ProgramBuilder b("matmult");
  const StmtId innermost = b.loop(instrs(1), 8, b.code(instrs(49)));
  const StmtId middle =
      b.loop(instrs(1), 6, b.seq({b.code(instrs(10)), innermost,
                                   b.code(instrs(8))}));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                     b.code(instrs(4)),
                     b.loop(instrs(1), 12, b.code(instrs(10))),  // init
                     b.loop(instrs(1), 6, b.seq({b.code(instrs(8)), middle})),
                     b.code(instrs(2)),
                 })));
  return b.build(0);
}

/// fft: butterfly nest with a twiddle-factor helper (the paper's minimum
/// RW gain).
Program build_fft() {
  ProgramBuilder b("fft");
  const FunctionId sine = b.add_function("my_sin", b.code(instrs(23)));
  const StmtId butterfly = b.seq({
      b.code(instrs(13)),
      b.call(sine),
      b.code(instrs(12)),
      b.if_else(instrs(1), b.code(instrs(2)), b.code(instrs(3))),
  });
  const StmtId stage = b.loop(instrs(1), 24, butterfly);
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                             b.code(instrs(6)),
                             b.loop(instrs(1), 3,
                                    b.seq({b.code(instrs(7)), stage})),
                             b.loop(instrs(1), 32, b.code(instrs(4))),
                             b.code(instrs(3)),
                         })));
  return b.build(1);
}

/// ludcmp: LU decomposition — triangular nests plus a small solve kernel.
Program build_ludcmp() {
  ProgramBuilder b("ludcmp");
  const StmtId reduce =
      b.loop(instrs(1), 6, b.seq({b.code(instrs(12)),
                                  b.loop(instrs(1), 6, b.code(instrs(51)))}));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
          b.code(instrs(5)),
          b.loop(instrs(1), 4, b.seq({b.code(instrs(14)), reduce})),
          b.loop(instrs(1), 6, b.code(instrs(18))),  // forward substitution
          b.loop(instrs(1), 6, b.code(instrs(9))),   // back substitution
      })));
  return b.build(0);
}

/// minver: matrix inversion — three phases with a shared pivot helper.
Program build_minver() {
  ProgramBuilder b("minver");
  const FunctionId pivot = b.add_function("mmul", b.code(instrs(14)));
  const StmtId phase1 =
      b.loop(instrs(1), 3,
             b.seq({b.code(instrs(15)),
                    b.loop(instrs(1), 3, b.seq({b.code(instrs(9)),
                                                b.call(pivot)}))}));
  const StmtId phase2 = b.loop(instrs(1), 9, b.code(instrs(17)));
  const StmtId phase3 =
      b.loop(instrs(1), 3, b.loop(instrs(1), 3, b.code(instrs(12))));
  b.add_function("main", with_runtime(b, 28, 12,
                                      b.seq({b.code(instrs(6)), phase1,
                                             phase2, phase3})));
  return b.build(1);
}

/// ns: 4-deep search nest with a tiny innermost test.
Program build_ns() {
  ProgramBuilder b("ns");
  const StmtId l4 = b.loop(instrs(1), 6,
                           b.seq({b.code(instrs(45)),
                                  b.if_then(instrs(1), b.code(instrs(12)))}));
  const StmtId l3 = b.loop(instrs(1), 4, b.seq({b.code(instrs(6)), l4}));
  const StmtId l2 = b.loop(instrs(1), 3, b.seq({b.code(instrs(5)), l3}));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                             b.code(instrs(3)),
                             b.loop(instrs(1), 3, l2),
                         })));
  return b.build(0);
}

/// statemate: generated state-machine code — branchy outer loop around a
/// small inner scan.
Program build_statemate() {
  ProgramBuilder b("statemate");
  const StmtId branchy = b.seq({
      b.if_else(instrs(1), b.code(instrs(10)), b.code(instrs(9))),
      b.if_else(instrs(1), b.code(instrs(8)), b.code(instrs(11))),
  });
  const StmtId inner = b.loop(instrs(1), 8, b.code(instrs(12)));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                     b.code(instrs(10)),
                     b.loop(instrs(1), 30, b.seq({branchy, inner,
                                                  b.code(instrs(6))})),
                     b.code(instrs(3)),
                 })));
  return b.build(0);
}

/// ud: LU-based linear-system solver (the paper's minimum SRB gain) —
/// mixed small and medium nests.
Program build_ud() {
  ProgramBuilder b("ud");
  const StmtId fact =
      b.loop(instrs(1), 5,
             b.seq({b.code(instrs(24)),
                    b.loop(instrs(1), 5, b.code(instrs(20)))}));
  b.add_function("main", with_runtime(b, 28, 12, b.seq({
                     b.code(instrs(4)),
                     b.loop(instrs(1), 5, b.seq({b.code(instrs(12)), fact,
                                                 b.code(instrs(8))})),
                     b.loop(instrs(1), 5, b.code(instrs(24))),  // substitution
                     b.code(instrs(2)),
                 })));
  return b.build(0);
}

// ---------------------------------------------------------------------------
// Extension kernels — not part of the 25-benchmark paper suite; campaign
// tasks for the data-cache study (§VI future work). Unlike the suite
// above, their blocks record *data* load addresses, which the combined
// I+D analyzer (dcache/dcache_analysis.hpp) consumes.
// ---------------------------------------------------------------------------

/// Interpolation kernel: scalar state + a walked coefficient table.
Program build_interp() {
  ProgramBuilder b("interp");
  std::vector<Address> body_loads;
  for (Address i = 0; i < 6; ++i) body_loads.push_back(0x4000 + 4 * i);
  for (Address i = 0; i < 8; ++i) body_loads.push_back(0x5000 + 16 * i);
  b.add_function("main",
                 b.seq({
                     b.code_with_loads(40, {0x4000, 0x4010, 0x4020}),
                     b.loop(1, 48, b.code_with_loads(36, body_loads)),
                     b.code(12),
                 }));
  return b.build(0);
}

/// State machine with a dispatch table and per-state scalar loads.
Program build_dispatch() {
  ProgramBuilder b("dispatch");
  std::vector<Address> dispatch;
  for (Address i = 0; i < 12; ++i) dispatch.push_back(0x6000 + 8 * i);
  const StmtId body = b.seq({
      b.code_with_loads(10, dispatch),
      b.if_else(2, b.code_with_loads(18, {0x7000, 0x7004, 0x7010}),
                b.code_with_loads(22, {0x7040, 0x7044})),
  });
  b.add_function("main", b.seq({
                             b.code_with_loads(30, {0x7000}),
                             b.loop(1, 40, body),
                         }));
  return b.build(0);
}

/// Ring-buffer producer/consumer: the only extension kernel whose blocks
/// record *store* addresses, exercising the write-back data-cache and
/// TLB/L2 unified-stream paths (stores dirty lines; loads and stores both
/// take translations).
Program build_ringbuf() {
  ProgramBuilder b("ringbuf");
  std::vector<Address> slot_loads, slot_stores;
  for (Address i = 0; i < 8; ++i) {
    slot_loads.push_back(0x8000 + 16 * i);
    slot_stores.push_back(0x8100 + 16 * i);
  }
  const StmtId produce = b.code_with_accesses(
      14, {0x8200, 0x8204}, slot_stores);          // head index + slot write
  const StmtId consume = b.code_with_accesses(
      18, slot_loads, {0x8208, 0x820c});           // slot read + tail index
  b.add_function("main",
                 b.seq({
                     b.code_with_accesses(24, {0x8200}, {0x8200, 0x8204}),
                     b.loop(1, 32, b.seq({produce,
                                          b.if_else(2, consume,
                                                    b.code_with_loads(
                                                        8, {0x8210})),
                                          b.code(4)})),
                     b.code_with_accesses(6, {0x8208}, {0x8210}),
                 }));
  return b.build(0);
}

struct Entry {
  const char* name;
  Program (*builder)();
};

constexpr Entry kRegistry[] = {
    // Category 1 — spatial locality only.
    {"adpcm", &build_adpcm},
    {"compress", &build_compress},
    {"cover", &build_cover},
    {"nsichneu", &build_nsichneu},
    // Category 2 — MRU-position temporal locality.
    {"fibcall", &build_fibcall},
    {"bs", &build_bs},
    {"prime", &build_prime},
    {"expint", &build_expint},
    {"janne_complex", &build_janne_complex},
    {"insertsort", &build_insertsort},
    // Category 3 — temporal locality beyond the MRU position.
    {"crc", &build_crc},
    {"fir", &build_fir},
    {"edn", &build_edn},
    {"fdct", &build_fdct},
    {"jfdctint", &build_jfdctint},
    {"ndes", &build_ndes},
    {"bsort100", &build_bsort100},
    {"cnt", &build_cnt},
    // Category 4 — mixed.
    {"matmult", &build_matmult},
    {"fft", &build_fft},
    {"ludcmp", &build_ludcmp},
    {"minver", &build_minver},
    {"ns", &build_ns},
    {"statemate", &build_statemate},
    {"ud", &build_ud},
};

/// Kept separate from kRegistry so names() stays exactly the paper's
/// 25-benchmark suite (Fig. 4 iterates it; the paper-invariant tests
/// average over it).
constexpr Entry kExtensionRegistry[] = {
    {"interp", &build_interp},
    {"dispatch", &build_dispatch},
    {"ringbuf", &build_ringbuf},
};

}  // namespace

std::vector<std::string> names() {
  std::vector<std::string> out;
  for (const Entry& e : kRegistry) out.emplace_back(e.name);
  return out;
}

std::vector<std::string> extension_names() {
  std::vector<std::string> out;
  for (const Entry& e : kExtensionRegistry) out.emplace_back(e.name);
  return out;
}

std::vector<std::string> all_names() {
  std::vector<std::string> out = names();
  for (const Entry& e : kExtensionRegistry) out.emplace_back(e.name);
  return out;
}

Program build(const std::string& name) {
  for (const Entry& e : kRegistry)
    if (name == e.name) return e.builder();
  for (const Entry& e : kExtensionRegistry)
    if (name == e.name) return e.builder();
  PWCET_EXPECTS(false && "unknown workload name");
  return ProgramBuilder("unreachable").build(0);
}

std::vector<Program> build_all() {
  std::vector<Program> out;
  out.reserve(std::size(kRegistry));
  for (const Entry& e : kRegistry) out.push_back(e.builder());
  return out;
}

}  // namespace pwcet::workloads
