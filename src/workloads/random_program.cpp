#include "workloads/random_program.hpp"

#include <string>
#include <vector>

#include "sim/path.hpp"
#include "support/contracts.hpp"

namespace pwcet::workloads {
namespace {

constexpr std::uint32_t kInstrPerLine = 4;

class Generator {
 public:
  Generator(Rng& rng, const RandomProgramParams& params)
      : rng_(rng), params_(params) {}

  Program generate() {
    // A couple of attempts: oversized programs (loop-bound products) are
    // regenerated rather than clamped, keeping the distribution simple.
    for (int attempt = 0; attempt < 32; ++attempt) {
      ProgramBuilder b("random");
      callees_.clear();
      const std::uint32_t n_callees =
          static_cast<std::uint32_t>(rng_.next_below(params_.max_functions));
      for (std::uint32_t f = 0; f < n_callees; ++f) {
        // Callee bodies are shallow (depth 2) to keep inlining bounded.
        // (Name built via += — g++ 12 -Wrestrict misfire on literal+temp
        // operator+ at -O2, GCC PR105329; CI builds Release with -Werror.)
        std::string name = "f";
        name += std::to_string(f);
        callees_.push_back(b.add_function(name, stmt(b, /*depth=*/2)));
      }
      b.add_function("main", stmt(b, params_.max_depth));
      Program p = b.build(static_cast<FunctionId>(callees_.size()));
      if (heavy_walk_fetch_count(p) <= params_.max_heavy_fetches) return p;
    }
    // Fall back to a trivially small program (statistically unreachable
    // with sane parameters).
    ProgramBuilder b("random_fallback");
    b.add_function("main", b.code(4));
    return b.build(0);
  }

 private:
  StmtId code(ProgramBuilder& b) {
    const std::uint32_t instrs =
        kInstrPerLine * (1 + static_cast<std::uint32_t>(
                                 rng_.next_below(params_.max_code_lines)));
    if (params_.max_data_loads == 0 && params_.max_data_stores == 0)
      return b.code(instrs);
    std::vector<Address> loads;
    if (params_.max_data_loads != 0) {
      const std::uint64_t n = rng_.next_below(params_.max_data_loads + 1);
      for (std::uint64_t i = 0; i < n; ++i)
        loads.push_back(0x8000 +
                        4 * rng_.next_below(params_.data_pool_words));
    }
    if (params_.max_data_stores == 0)
      return b.code_with_loads(instrs, std::move(loads));
    std::vector<Address> stores;
    const std::uint64_t n = rng_.next_below(params_.max_data_stores + 1);
    for (std::uint64_t i = 0; i < n; ++i)
      stores.push_back(0x8000 + 4 * rng_.next_below(params_.data_pool_words));
    return b.code_with_accesses(instrs, std::move(loads), std::move(stores));
  }

  StmtId stmt(ProgramBuilder& b, std::uint32_t depth) {
    if (depth == 0) return code(b);
    switch (rng_.next_below(callees_.empty() ? 4 : 5)) {
      case 0:
        return code(b);
      case 1: {  // sequence
        std::vector<StmtId> children;
        const std::uint64_t n = 1 + rng_.next_below(params_.max_children);
        for (std::uint64_t i = 0; i < n; ++i)
          children.push_back(stmt(b, depth - 1));
        return b.seq(std::move(children));
      }
      case 2: {  // if/else (sometimes one-armed)
        const StmtId then_arm = stmt(b, depth - 1);
        if (rng_.next_bernoulli(0.3)) return b.if_then(1, then_arm);
        return b.if_else(1, then_arm, stmt(b, depth - 1));
      }
      case 3: {  // bounded loop (occasionally bound 0 or 1 for edge cases)
        const std::int64_t bound =
            static_cast<std::int64_t>(rng_.next_below(
                static_cast<std::uint64_t>(params_.max_loop_bound) + 1));
        return b.loop(1, bound, stmt(b, depth - 1));
      }
      default:  // call a previously generated function
        return b.call(callees_[rng_.next_below(callees_.size())]);
    }
  }

  Rng& rng_;
  const RandomProgramParams& params_;
  std::vector<FunctionId> callees_;
};

}  // namespace

Program random_program(Rng& rng, const RandomProgramParams& params) {
  Generator gen(rng, params);
  return gen.generate();
}

}  // namespace pwcet::workloads
