// Mälardalen WCET benchmark counterparts (paper §IV-A, [13]).
//
// The paper evaluates 25 benchmarks compiled for MIPS R2000/R3000 with
// gcc 4.1. Those binaries are not shipped here; instead each benchmark is
// re-expressed with the structured program builder, preserving what the
// instruction-cache analysis actually consumes: code sizes, loop nesting
// and bounds, call structure (callees share addresses across call sites),
// and branch shapes. Sizes are denominated in cache lines of the paper's
// configuration (16 B lines, 4-byte instructions => 4 instructions/line),
// mirroring the source complexity of the originals, so the ratio of loop
// working set to cache capacity — the property that drives the paper's
// four behaviour categories — is comparable.
#pragma once

#include <string>
#include <vector>

#include "cfg/program.hpp"

namespace pwcet::workloads {

/// All 25 benchmark names, in the display order used by the Fig. 4 bench.
std::vector<std::string> names();

/// Extension-kernel names (data-cache study, paper §VI future work): not
/// part of the 25-benchmark suite, but valid campaign tasks. Their blocks
/// record data load addresses for the combined I+D analyzer.
std::vector<std::string> extension_names();

/// names() + extension_names() — every name build() accepts (the set the
/// spec loader validates "tasks" against).
std::vector<std::string> all_names();

/// Builds one benchmark or extension kernel by name; aborts on unknown
/// names.
Program build(const std::string& name);

/// Builds the full suite in display order.
std::vector<Program> build_all();

}  // namespace pwcet::workloads
