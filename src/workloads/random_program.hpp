// Random structured-program generation.
//
// Produces arbitrary (but always well-formed) tasks for property-based
// testing and robustness studies: every generated program has bounded
// loops, single-entry/single-exit structure, and a code layout like the
// hand-written workloads. The same generator doubles as a stress tool for
// users evaluating the analyzer on program shapes beyond the Mälardalen
// suite.
#pragma once

#include <cstdint>

#include "cfg/program.hpp"
#include "support/rng.hpp"

namespace pwcet::workloads {

struct RandomProgramParams {
  std::uint32_t max_depth = 4;        ///< nesting depth of seq/if/loop
  std::uint32_t max_children = 4;     ///< fan-out of sequences
  std::uint32_t max_code_lines = 12;  ///< straight-line chunk size (lines)
  std::int64_t max_loop_bound = 12;
  std::uint32_t max_functions = 3;    ///< callees generated before main
  /// Hard cap on the worst-case fetch count; generation retries until the
  /// program fits (keeps simulation-based property tests fast).
  std::uint64_t max_heavy_fetches = 300000;
  /// Data loads per straight-line chunk (0 = none, the default — programs
  /// and RNG streams are then identical to earlier releases). Non-zero
  /// makes every chunk draw up to this many loads from a small address
  /// pool, exercising the data-cache analysis path
  /// (dcache/dcache_analysis.hpp) in property tests.
  std::uint32_t max_data_loads = 0;
  /// Size of the data address pool, in 4-byte words; small pools force
  /// line sharing and set conflicts in tiny data caches.
  std::uint32_t data_pool_words = 64;
  /// Data stores per straight-line chunk (0 = none, the default — RNG
  /// streams are then identical to load-only generation). Stores draw from
  /// the same pool as loads so load/store pairs share lines, exercising
  /// the write-back domain's dirty-eviction accounting.
  std::uint32_t max_data_stores = 0;
};

/// Generates a random task. Deterministic in (rng state, params).
Program random_program(Rng& rng, const RandomProgramParams& params = {});

}  // namespace pwcet::workloads
