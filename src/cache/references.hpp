// Line-reference extraction.
//
// The analyses and the FMM work at *line-reference* granularity: each basic
// block is abstracted into the ordered sequence of cache lines it fetches
// from, with the number of instruction fetches covered by each line
// (`fetches`). In a working (or RW/SRB-covered) set, the fetches after the
// first one in a line always hit — spatial locality. When a set is entirely
// faulty and unprotected, every one of the `fetches` accesses misses, which
// is the catastrophic case the paper's mechanisms eliminate.
#pragma once

#include <vector>

#include "cache/cache_config.hpp"
#include "cfg/cfg.hpp"

namespace pwcet {

/// One cache-line reference inside a basic block.
struct LineRef {
  LineAddress line = 0;
  SetIndex set = 0;
  std::uint32_t fetches = 0;  ///< instruction fetches covered by this line
};

/// Per-block ordered line references, indexed by BlockId.
using ReferenceMap = std::vector<std::vector<LineRef>>;

/// Extracts the line references of every basic block.
ReferenceMap extract_references(const ControlFlowGraph& cfg,
                                const CacheConfig& config);

/// Total fetches recorded in the map for one block (== instruction_count).
std::uint64_t block_fetches(const ReferenceMap& refs, BlockId b);

}  // namespace pwcet
