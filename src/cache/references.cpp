#include "cache/references.hpp"

namespace pwcet {

ReferenceMap extract_references(const ControlFlowGraph& cfg,
                                const CacheConfig& config) {
  config.validate();
  ReferenceMap refs(cfg.block_count());
  for (const BasicBlock& b : cfg.blocks()) {
    auto& seq = refs[size_t(b.id)];
    for (std::uint32_t i = 0; i < b.instruction_count; ++i) {
      const Address a = b.first_address + i * kInstructionBytes;
      const LineAddress line = config.line_of(a);
      if (!seq.empty() && seq.back().line == line) {
        ++seq.back().fetches;
      } else {
        seq.push_back({line, config.set_of_line(line), 1});
      }
    }
  }
  return refs;
}

std::uint64_t block_fetches(const ReferenceMap& refs, BlockId b) {
  std::uint64_t total = 0;
  for (const LineRef& r : refs[size_t(b)]) total += r.fetches;
  return total;
}

}  // namespace pwcet
