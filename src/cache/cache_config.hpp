// Instruction-cache geometry and timing parameters.
#pragma once

#include <cstdint>

#include "cfg/basic_block.hpp"
#include "support/contracts.hpp"
#include "support/types.hpp"

namespace pwcet {

/// Set-associative LRU instruction cache (paper §II-A): S sets, W ways,
/// line size in bytes (the paper's K is the line size in *bits*).
struct CacheConfig {
  std::uint32_t sets = 16;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 16;
  Cycles hit_latency = 1;     ///< cycles per fetch that hits
  Cycles miss_penalty = 100;  ///< extra cycles per fetch that misses

  /// Paper default: 1 KB, 4-way, 16 B lines, 1-cycle hit, 100-cycle miss.
  static CacheConfig paper_default() { return CacheConfig{}; }

  std::uint64_t size_bytes() const {
    return std::uint64_t{sets} * ways * line_bytes;
  }

  /// K of Eq. (1): bits per cache block.
  std::uint32_t block_bits() const { return line_bytes * 8; }

  LineAddress line_of(Address a) const { return a / line_bytes; }

  SetIndex set_of_line(LineAddress line) const {
    return static_cast<SetIndex>(line % sets);
  }

  SetIndex set_of(Address a) const { return set_of_line(line_of(a)); }

  void validate() const {
    PWCET_EXPECTS(sets > 0 && ways > 0 && line_bytes > 0);
    PWCET_EXPECTS(line_bytes % kInstructionBytes == 0);
    PWCET_EXPECTS(hit_latency >= 0 && miss_penalty >= 0);
  }
};

}  // namespace pwcet
