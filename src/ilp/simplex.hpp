// Dense two-phase primal simplex.
//
// Design notes:
//  * The IPET/FMM pipeline solves many LPs that share one constraint system
//    and differ only in the objective (one delta objective per
//    (set, fault-count) pair). The solver therefore keeps its tableau after
//    phase 1/2 and supports `reoptimize(new_objective)`, which rebuilds the
//    reduced-cost row from the current feasible basis and re-runs phase 2 —
//    no phase 1 per objective.
//  * Pivoting: Dantzig rule with a Bland's-rule fallback after an iteration
//    threshold, which guarantees termination under degeneracy.
#pragma once

#include <vector>

#include "ilp/linear_program.hpp"

namespace pwcet {

class SimplexSolver {
 public:
  /// Builds the standard-form tableau and runs phase 1 (feasibility).
  explicit SimplexSolver(const LinearProgram& lp);

  /// True if the constraint system has any feasible point.
  bool feasible() const { return feasible_; }

  /// Optimizes the given objective over the constraint system, starting
  /// from the current feasible basis (phase 2 only). May be called many
  /// times with different objectives.
  LpSolution reoptimize(const std::vector<double>& objective);

 private:
  LpSolution run_phase2(const std::vector<double>& objective);
  void rebuild_objective_row(const std::vector<double>& padded_objective);
  bool pivot(std::size_t row, std::size_t col);
  int phase_loop(const std::vector<double>& padded_objective);
  LpSolution extract(const std::vector<double>& objective) const;

  std::size_t structural_vars_ = 0;  // variables of the original program
  std::size_t total_vars_ = 0;       // + slacks/surplus (artificials extra)
  std::size_t rows_ = 0;
  // Tableau: rows_ x (total_cols_ + 1); last column is the RHS.
  std::size_t total_cols_ = 0;  // includes artificial columns
  std::vector<double> tab_;
  std::vector<double> obj_row_;  // reduced costs, size total_cols_ + 1
  std::vector<std::int32_t> basis_;  // basic column per row
  std::size_t artificial_begin_ = 0;
  bool feasible_ = false;

  double& at(std::size_t r, std::size_t c) {
    return tab_[r * (total_cols_ + 1) + c];
  }
  double at(std::size_t r, std::size_t c) const {
    return tab_[r * (total_cols_ + 1) + c];
  }
};

/// One-shot LP solve (relaxation of integrality).
LpSolution solve_lp(const LinearProgram& lp);

}  // namespace pwcet
