#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/contracts.hpp"

namespace pwcet {
namespace {

constexpr double kPivotEps = 1e-9;
constexpr double kReducedCostEps = 1e-7;
constexpr double kFeasibilityEps = 1e-6;
constexpr std::size_t kHardIterationLimit = 500000;

}  // namespace

SimplexSolver::SimplexSolver(const LinearProgram& lp) {
  structural_vars_ = lp.variable_count();
  rows_ = lp.constraint_count();

  // Count slack/surplus and artificial columns.
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  // Normalize each constraint to rhs >= 0 first, then:
  //   <= : slack, basic
  //   >= : surplus + artificial
  //   =  : artificial
  struct Row {
    std::vector<std::pair<VarId, double>> terms;
    ConstraintSense sense;
    double rhs;
  };
  std::vector<Row> norm;
  norm.reserve(rows_);
  for (const LinearConstraint& c : lp.constraints()) {
    Row r{c.terms, c.sense, c.rhs};
    if (r.rhs < 0.0) {
      r.rhs = -r.rhs;
      for (auto& [var, coef] : r.terms) coef = -coef;
      if (r.sense == ConstraintSense::kLe)
        r.sense = ConstraintSense::kGe;
      else if (r.sense == ConstraintSense::kGe)
        r.sense = ConstraintSense::kLe;
    }
    switch (r.sense) {
      case ConstraintSense::kLe:
        ++slack_count;
        break;
      case ConstraintSense::kGe:
        ++slack_count;
        ++artificial_count;
        break;
      case ConstraintSense::kEq:
        ++artificial_count;
        break;
    }
    norm.push_back(std::move(r));
  }

  total_vars_ = structural_vars_ + slack_count;
  artificial_begin_ = total_vars_;
  total_cols_ = total_vars_ + artificial_count;

  tab_.assign(rows_ * (total_cols_ + 1), 0.0);
  basis_.assign(rows_, -1);

  std::size_t next_slack = structural_vars_;
  std::size_t next_artificial = artificial_begin_;
  for (std::size_t i = 0; i < rows_; ++i) {
    const Row& r = norm[i];
    for (const auto& [var, coef] : r.terms) at(i, size_t(var)) += coef;
    at(i, total_cols_) = r.rhs;
    switch (r.sense) {
      case ConstraintSense::kLe:
        at(i, next_slack) = 1.0;
        basis_[i] = static_cast<std::int32_t>(next_slack);
        ++next_slack;
        break;
      case ConstraintSense::kGe:
        at(i, next_slack) = -1.0;
        ++next_slack;
        at(i, next_artificial) = 1.0;
        basis_[i] = static_cast<std::int32_t>(next_artificial);
        ++next_artificial;
        break;
      case ConstraintSense::kEq:
        at(i, next_artificial) = 1.0;
        basis_[i] = static_cast<std::int32_t>(next_artificial);
        ++next_artificial;
        break;
    }
  }

  // Phase 1: maximize -(sum of artificials).
  std::vector<double> phase1(total_cols_, 0.0);
  for (std::size_t j = artificial_begin_; j < total_cols_; ++j)
    phase1[j] = -1.0;
  rebuild_objective_row(phase1);
  const int status = phase_loop(phase1);
  // Phase 1 is never unbounded (objective <= 0); treat limit as infeasible.
  feasible_ = (status == 0) && (obj_row_[total_cols_] > -kFeasibilityEps);

  if (!feasible_) return;

  // Drive leftover artificial variables out of the basis where possible so
  // phase 2 cannot be corrupted by them.
  for (std::size_t i = 0; i < rows_; ++i) {
    if (static_cast<std::size_t>(basis_[i]) < artificial_begin_) continue;
    // Find any non-artificial column with a non-zero entry to pivot in.
    for (std::size_t j = 0; j < total_vars_; ++j) {
      if (std::abs(at(i, j)) > kPivotEps) {
        pivot(i, j);
        break;
      }
    }
    // If none exists, the row is redundant; the artificial stays basic at
    // value 0 and its column is excluded from phase-2 entering candidates.
  }
}

void SimplexSolver::rebuild_objective_row(
    const std::vector<double>& padded_objective) {
  PWCET_EXPECTS(padded_objective.size() == total_cols_);
  obj_row_.assign(total_cols_ + 1, 0.0);
  for (std::size_t j = 0; j <= total_cols_; ++j) {
    double z = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double cb = padded_objective[size_t(basis_[r])];
      if (cb != 0.0) z += cb * at(r, j);
    }
    obj_row_[j] = z - (j < total_cols_ ? padded_objective[j] : 0.0);
  }
}

bool SimplexSolver::pivot(std::size_t row, std::size_t col) {
  const double p = at(row, col);
  if (std::abs(p) <= kPivotEps) return false;
  const double inv = 1.0 / p;
  for (std::size_t j = 0; j <= total_cols_; ++j) at(row, j) *= inv;
  at(row, col) = 1.0;  // kill residual rounding
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    const double factor = at(r, col);
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j <= total_cols_; ++j)
      at(r, j) -= factor * at(row, j);
    at(r, col) = 0.0;
  }
  const double ofactor = obj_row_[col];
  if (ofactor != 0.0) {
    for (std::size_t j = 0; j <= total_cols_; ++j)
      obj_row_[j] -= ofactor * at(row, j);
    obj_row_[col] = 0.0;
  }
  basis_[row] = static_cast<std::int32_t>(col);
  return true;
}

// Returns 0 = optimal, 1 = unbounded, 2 = iteration limit.
int SimplexSolver::phase_loop(const std::vector<double>& padded_objective) {
  const std::size_t bland_threshold = 50 * (rows_ + total_cols_ + 1);
  // Artificial columns may only enter during phase 1 (when their objective
  // coefficient is negative); detect that from obj usage instead of a flag:
  // we simply never let artificial columns enter once they'd improve a
  // non-phase-1 objective. The caller guarantees artificials have objective
  // coefficient 0 outside phase 1, in which case their reduced cost can
  // only be >= 0... not guaranteed under degeneracy, so exclude explicitly.
  const bool is_phase1 = [&] {
    for (std::size_t j = artificial_begin_; j < total_cols_; ++j)
      if (padded_objective[j] != 0.0) return true;
    return false;
  }();
  const std::size_t enter_limit = is_phase1 ? total_cols_ : total_vars_;

  for (std::size_t iter = 0; iter < kHardIterationLimit; ++iter) {
    const bool bland = iter >= bland_threshold;
    // Entering column: most negative reduced cost (Dantzig) or first
    // negative (Bland).
    std::size_t enter = total_cols_;
    double best = -kReducedCostEps;
    for (std::size_t j = 0; j < enter_limit; ++j) {
      if (obj_row_[j] < best) {
        best = obj_row_[j];
        enter = j;
        if (bland) break;
      }
    }
    if (enter == total_cols_) return 0;  // optimal

    // Ratio test.
    std::size_t leave = rows_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rows_; ++r) {
      const double a = at(r, enter);
      if (a <= kPivotEps) continue;
      const double ratio = at(r, total_cols_) / a;
      if (ratio < best_ratio - kPivotEps ||
          (bland && std::abs(ratio - best_ratio) <= kPivotEps &&
           leave != rows_ && basis_[r] < basis_[leave])) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == rows_) return 1;  // unbounded
    pivot(leave, enter);
  }
  return 2;
}

LpSolution SimplexSolver::extract(const std::vector<double>& objective) const {
  LpSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.values.assign(structural_vars_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto b = static_cast<std::size_t>(basis_[r]);
    if (b < structural_vars_) sol.values[b] = at(r, total_cols_);
  }
  // Recompute the objective from the original coefficients (no tableau
  // accumulation drift).
  sol.objective = 0.0;
  for (std::size_t j = 0; j < structural_vars_; ++j)
    sol.objective += objective[j] * sol.values[j];
  return sol;
}

LpSolution SimplexSolver::run_phase2(const std::vector<double>& objective) {
  PWCET_EXPECTS(objective.size() == structural_vars_);
  if (!feasible_) {
    LpSolution sol;
    sol.status = SolveStatus::kInfeasible;
    return sol;
  }
  std::vector<double> padded(total_cols_, 0.0);
  std::copy(objective.begin(), objective.end(), padded.begin());
  rebuild_objective_row(padded);
  const int status = phase_loop(padded);
  if (status == 1) {
    LpSolution sol;
    sol.status = SolveStatus::kUnbounded;
    return sol;
  }
  if (status == 2) {
    LpSolution sol;
    sol.status = SolveStatus::kIterationLimit;
    return sol;
  }
  return extract(objective);
}

LpSolution SimplexSolver::reoptimize(const std::vector<double>& objective) {
  return run_phase2(objective);
}

LpSolution solve_lp(const LinearProgram& lp) {
  SimplexSolver solver(lp);
  std::vector<double> objective(lp.objective().begin(), lp.objective().end());
  return solver.reoptimize(objective);
}

}  // namespace pwcet
