#include "ilp/linear_program.hpp"

#include "support/contracts.hpp"

namespace pwcet {

VarId LinearProgram::add_variable(std::string name, bool integral) {
  const VarId id = static_cast<VarId>(names_.size());
  names_.push_back(std::move(name));
  objective_.push_back(0.0);
  integral_.push_back(integral ? 1 : 0);
  return id;
}

void LinearProgram::set_objective(VarId v, double coefficient) {
  PWCET_EXPECTS(v >= 0 && static_cast<size_t>(v) < objective_.size());
  objective_[size_t(v)] = coefficient;
}

void LinearProgram::set_objective_vector(std::vector<double> objective) {
  PWCET_EXPECTS(objective.size() == objective_.size());
  objective_ = std::move(objective);
}

void LinearProgram::add_constraint(LinearConstraint c) {
  for (const auto& [var, coef] : c.terms) {
    PWCET_EXPECTS(var >= 0 && static_cast<size_t>(var) < names_.size());
    (void)coef;
  }
  constraints_.push_back(std::move(c));
}

}  // namespace pwcet
