// Branch-and-bound MILP solver on top of the simplex relaxation.
//
// IPET constraint matrices are network-flow-like and almost always have
// integral LP optima; branch and bound exists for exactness guarantees and
// for adversarial test models. For WCET purposes the LP relaxation optimum
// is itself a *sound* upper bound (relaxing integrality can only increase a
// maximum), which `solve_lp_relaxation_bound` exposes.
#pragma once

#include <cstdint>

#include "ilp/linear_program.hpp"

namespace pwcet {

struct IlpOptions {
  /// Maximum branch-and-bound nodes before giving up (kIterationLimit).
  std::size_t max_nodes = 100000;
  /// Integrality tolerance for relaxation values.
  double integrality_eps = 1e-6;
};

/// Exact mixed-integer maximization via depth-first branch and bound.
LpSolution solve_ilp(const LinearProgram& lp, const IlpOptions& options = {});

/// Sound upper bound on the ILP maximum: LP relaxation optimum, or the
/// exact value when the relaxation happens to be integral.
LpSolution solve_lp_relaxation_bound(const LinearProgram& lp);

}  // namespace pwcet
