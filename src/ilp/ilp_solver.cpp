#include "ilp/ilp_solver.hpp"

#include <cmath>
#include <optional>

#include "ilp/simplex.hpp"
#include "support/contracts.hpp"

namespace pwcet {
namespace {

/// Returns the first integral variable with a fractional relaxation value.
std::optional<VarId> fractional_variable(const LinearProgram& lp,
                                         const LpSolution& sol, double eps) {
  for (VarId v = 0; static_cast<std::size_t>(v) < lp.variable_count(); ++v) {
    if (!lp.is_integral(v)) continue;
    const double x = sol.values[size_t(v)];
    if (std::abs(x - std::round(x)) > eps) return v;
  }
  return std::nullopt;
}

struct BnbState {
  const IlpOptions* options = nullptr;
  std::size_t nodes = 0;
  bool node_budget_hit = false;
  std::optional<LpSolution> incumbent;
};

void branch(LinearProgram lp, BnbState& st) {
  if (++st.nodes > st.options->max_nodes) {
    st.node_budget_hit = true;
    return;
  }
  const LpSolution relax = solve_lp(lp);
  if (relax.status == SolveStatus::kUnbounded) {
    // Propagate unboundedness by storing a sentinel incumbent.
    LpSolution sol;
    sol.status = SolveStatus::kUnbounded;
    st.incumbent = sol;
    return;
  }
  if (relax.status != SolveStatus::kOptimal) return;  // pruned (infeasible)
  if (st.incumbent && st.incumbent->status == SolveStatus::kOptimal &&
      relax.objective <= st.incumbent->objective +
                             st.options->integrality_eps) {
    return;  // bound: cannot beat the incumbent
  }
  const auto frac = fractional_variable(lp, relax, st.options->integrality_eps);
  if (!frac) {
    if (!st.incumbent || st.incumbent->status != SolveStatus::kOptimal ||
        relax.objective > st.incumbent->objective)
      st.incumbent = relax;
    return;
  }
  const double x = relax.values[size_t(*frac)];
  const double floor_x = std::floor(x);

  // Branch x <= floor(x).
  {
    LinearProgram down = lp;
    LinearConstraint c;
    c.terms = {{*frac, 1.0}};
    c.sense = ConstraintSense::kLe;
    c.rhs = floor_x;
    down.add_constraint(std::move(c));
    branch(std::move(down), st);
    if (st.incumbent && st.incumbent->status == SolveStatus::kUnbounded)
      return;
  }
  // Branch x >= ceil(x).
  {
    LinearProgram up = lp;
    LinearConstraint c;
    c.terms = {{*frac, 1.0}};
    c.sense = ConstraintSense::kGe;
    c.rhs = floor_x + 1.0;
    up.add_constraint(std::move(c));
    branch(std::move(up), st);
  }
}

}  // namespace

LpSolution solve_ilp(const LinearProgram& lp, const IlpOptions& options) {
  // Fast path: integral relaxation.
  const LpSolution relax = solve_lp(lp);
  if (relax.status != SolveStatus::kOptimal) return relax;
  if (!fractional_variable(lp, relax, options.integrality_eps)) return relax;

  BnbState st;
  st.options = &options;
  branch(lp, st);
  if (st.incumbent) return *st.incumbent;
  LpSolution sol;
  sol.status = st.node_budget_hit ? SolveStatus::kIterationLimit
                                  : SolveStatus::kInfeasible;
  return sol;
}

LpSolution solve_lp_relaxation_bound(const LinearProgram& lp) {
  return solve_lp(lp);
}

}  // namespace pwcet
