// Linear/integer program model used by the IPET and FMM formulations.
//
// This module replaces the CPLEX 12.5 dependency of the paper's toolchain.
// Models are maximization problems over non-negative variables with linear
// constraints; integrality is requested per variable and enforced by the
// branch-and-bound layer (`ilp_solver`).
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace pwcet {

using VarId = std::int32_t;

enum class ConstraintSense : std::uint8_t { kLe, kGe, kEq };

/// One linear constraint: sum(coef * var) <sense> rhs.
struct LinearConstraint {
  std::vector<std::pair<VarId, double>> terms;
  ConstraintSense sense = ConstraintSense::kLe;
  double rhs = 0.0;
};

/// Maximization LP/ILP over variables x >= 0.
class LinearProgram {
 public:
  /// Adds a variable (default objective coefficient 0); returns its id.
  VarId add_variable(std::string name, bool integral = true);

  void set_objective(VarId v, double coefficient);
  double objective_coefficient(VarId v) const { return objective_[size_t(v)]; }

  /// Replaces the whole objective vector (size must match variable count).
  void set_objective_vector(std::vector<double> objective);

  void add_constraint(LinearConstraint c);

  std::size_t variable_count() const { return names_.size(); }
  std::size_t constraint_count() const { return constraints_.size(); }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<double>& objective() const { return objective_; }
  const std::string& variable_name(VarId v) const { return names_[size_t(v)]; }
  bool is_integral(VarId v) const { return integral_[size_t(v)] != 0; }

 private:
  std::vector<std::string> names_;
  std::vector<double> objective_;
  std::vector<std::uint8_t> integral_;
  std::vector<LinearConstraint> constraints_;
};

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
};

}  // namespace pwcet
