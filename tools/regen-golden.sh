#!/bin/sh
# Regenerates the golden-report corpus under tests/golden/ from the shipped
# campaign specs, via the pwcet CLI — the same path the golden_report_test
# diffs against, so a corpus produced here is by construction what the test
# expects. Run from anywhere; pass the build directory as $1 (default:
# ./build relative to the repo root).
#
#   ./tools/regen-golden.sh [build-dir]
#
# Regenerate only after an intentional analysis change, and review the
# resulting diff: these files are the pinned byte-level contract of all
# eight paper artifacts.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
pwcet="$build_dir/pwcet"

if [ ! -x "$pwcet" ]; then
  echo "error: $pwcet not found or not executable (build first)" >&2
  exit 1
fi

mkdir -p "$repo_root/tests/golden"
for spec in "$repo_root"/specs/*.json; do
  stem=$(basename "$spec" .json)
  # Store off: golden bytes must come from a clean recomputation, not from
  # whatever cache directory the environment points at.
  PWCET_STORE=0 PWCET_CACHE_DIR= "$pwcet" run "$spec" \
      --output "$repo_root/tests/golden/$stem"
  echo "regenerated tests/golden/$stem"
done
