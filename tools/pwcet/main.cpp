// Entry point of the `pwcet` binary. All behavior lives in cli/cli.cpp so
// the test suite can drive the exact same code in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return pwcet::cli::run(args, std::cout, std::cerr);
}
